"""Dynamic work spreading — the paper's proposed §5.2 extension.

"A better approach may therefore be to grow the expander graph
dynamically. This would allow the execution to adapt to the program and
system characteristics, and it would remove the offloading degree
parameter. ... The main change to the runtime would be to extend it to
support dynamic process spawning."

This controller implements exactly that: it watches each apprank's spill
queue (tasks the §5.5 scheduler could not place anywhere), and when a
queue stays backed up for ``patience`` consecutive periods, it spawns a
helper rank for that apprank on the least-busy node it does not reach yet
— paying a modelled process-spawn latency before the helper exists. New
helpers join DLB, the trace, and the allocation policy on arrival.

The paper expected the benefit "would likely not be sufficient to
compensate for the extra implementation and evaluation complexity"
(§7.3); the ablation bench lets you check that judgement on the
simulator: dynamic spreading from degree 1 approaches the well-tuned
static degree while spawning only the helpers the imbalance needs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errors import AllocationError
from ..sim.engine import Simulator
from ..sim.events import Event, EventPriority

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..nanos.runtime import ClusterRuntime

__all__ = ["DynamicSpreader"]


class DynamicSpreader:
    """Queue-pressure-driven helper spawning."""

    def __init__(self, runtime: "ClusterRuntime", period: float = 0.2,
                 patience: int = 2, max_degree: int = 8,
                 spawn_latency: float = 0.1) -> None:
        if period <= 0 or spawn_latency < 0:
            raise AllocationError("invalid dynamic-spreading timing")
        if patience < 1 or max_degree < 1:
            raise AllocationError("invalid dynamic-spreading limits")
        self.runtime = runtime
        self.sim: Simulator = runtime.sim
        self.period = period
        self.patience = patience
        self.max_degree = max_degree
        self.spawn_latency = spawn_latency
        self._backed_up: dict[int, int] = {}
        self._pending: set[int] = set()     # appranks with a spawn in flight
        self._event: Optional[Event] = None
        self.helpers_spawned = 0
        self.ticks = 0

    def start(self) -> None:
        self._event = self.sim.schedule(self.period, self._tick,
                                        priority=EventPriority.POLICY,
                                        label="dynamic-spread-tick")

    def stop(self) -> None:
        if self._event is not None:
            self.sim.cancel(self._event)
            self._event = None

    # -- controller ----------------------------------------------------------

    def _tick(self) -> None:
        self.ticks += 1
        idle_exists = any(node.busy_cores() < node.num_cores
                          for node in self.runtime.cluster.nodes)
        for apprank_rt in self.runtime.appranks:
            apprank = apprank_rt.apprank
            if apprank in self._pending:
                continue
            # Pressure = work this apprank cannot place anywhere it reaches
            # WHILE capacity sits idle somewhere it does not reach. A spill
            # queue alone is normal (it drains through the iteration); only
            # the combination means the imbalance is "stuck" (§5.2).
            stuck = (apprank_rt.scheduler.queued > 0 and idle_exists
                     and self._pick_node(apprank_rt) is not None)
            if stuck:
                self._backed_up[apprank] = self._backed_up.get(apprank, 0) + 1
                if self._backed_up[apprank] >= self.patience:
                    self._try_spawn(apprank_rt)
            else:
                self._backed_up[apprank] = 0
        self._event = self.sim.schedule(self.period, self._tick,
                                        priority=EventPriority.POLICY,
                                        label="dynamic-spread-tick")

    def _try_spawn(self, apprank_rt) -> None:
        target = self._pick_node(apprank_rt)
        if target is None:
            return
        apprank = apprank_rt.apprank
        self._pending.add(apprank)
        self._backed_up[apprank] = 0

        def arrive() -> None:
            self._pending.discard(apprank)
            self.runtime.add_helper(apprank, target)
            self.helpers_spawned += 1

        # "dynamic process spawning" is not free: the helper only exists
        # after the modelled spawn latency.
        self.sim.schedule(self.spawn_latency, arrive,
                          label=f"helper-spawn:a{apprank}n{target}")

    def _pick_node(self, apprank_rt) -> Optional[int]:
        """Least-busy node this apprank cannot reach yet (None = give up)."""
        if len(apprank_rt.workers) >= self.max_degree:
            return None
        reachable = set(apprank_rt.workers)
        cluster = self.runtime.cluster
        cores = cluster.spec.machine.cores_per_node
        best, best_busy = None, None
        dead = self.runtime.dead_nodes
        for node in cluster.nodes:
            if node.node_id in reachable or node.node_id in dead:
                continue
            # placement feasibility: the new worker needs a one-core floor
            if len(self.runtime.arbiters[node.node_id].workers) >= cores:
                continue
            busy = node.busy_cores()
            if best_busy is None or (busy, node.node_id) < (best_busy, best):
                best, best_busy = node.node_id, busy
        return best
