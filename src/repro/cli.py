"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    repro-experiments <target> [--scale small|medium|paper] [--csv DIR]

where *target* is one of ``fig05``, ``fig06``, ``fig07``, ``fig08``,
``fig09``, ``fig10``, ``fig11``, ``headline``, ``resilience`` or ``all``.
Every run prints the paper-style series; ``--csv`` additionally writes one
CSV per table. The ``resilience`` target accepts ``--faults`` (the
:meth:`repro.faults.FaultPlan.parse` syntax) and ``--seed`` to replace the
built-in fault sweep with a custom plan::

    python -m repro resilience --faults "crash:apprank=0,node=1,t=0.5" --seed 7
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Iterable

from .errors import FaultError
from .experiments import (MEDIUM, PAPER, SMALL, ResultTable, Scale,
                          fig05_policies, fig06_applications, fig07_local,
                          fig08_sweep, fig09_traces, fig10_slownode,
                          fig11_convergence, headline, resilience)
from .faults import FaultPlan

__all__ = ["main"]

_SCALES = {"small": SMALL, "medium": MEDIUM, "paper": PAPER}


def _run_target(target: str, scale: Scale, faults: str | None = None,
                fault_seed: int = 0) -> list[ResultTable]:
    if target == "fig05":
        return [fig05_policies.run(scale)]
    if target == "fig06":
        micropp, nbody = fig06_applications.run(scale)
        return [micropp, nbody]
    if target == "fig07":
        micropp, nbody = fig07_local.run(scale)
        return [micropp, nbody]
    if target == "fig08":
        return [fig08_sweep.run(scale)]
    if target == "fig09":
        return [fig09_traces.run(scale)]
    if target == "fig10":
        return [fig10_slownode.run(scale)]
    if target == "fig11":
        return [fig11_convergence.run(scale)]
    if target == "headline":
        return [headline.run(scale)]
    if target == "resilience":
        return [resilience.run(scale, faults=faults, fault_seed=fault_seed)]
    raise ValueError(f"unknown target {target!r}")


TARGETS = ("fig05", "fig06", "fig07", "fig08", "fig09", "fig10", "fig11",
           "headline", "resilience")


def main(argv: Iterable[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables/figures of 'Transparent load "
                    "balancing of MPI programs using OmpSs-2@Cluster and "
                    "DLB' (ICPP 2022) on the simulator.")
    parser.add_argument("target", choices=TARGETS + ("all",),
                        help="which figure/table to regenerate")
    parser.add_argument("--scale", choices=sorted(_SCALES), default="medium",
                        help="experiment sizing; 'paper' uses the published "
                             "parameters (48-core nodes, 100 tasks/core) "
                             "and is slow")
    parser.add_argument("--csv", type=Path, default=None, metavar="DIR",
                        help="also write each table as CSV into DIR")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="resilience only: custom fault plan in the "
                             "FaultPlan.parse syntax, e.g. "
                             "'crash:apprank=0,node=1,t=0.5;msg:loss=0.01'")
    parser.add_argument("--seed", type=int, default=0,
                        help="resilience only: seed for the fault plan's "
                             "stochastic draws")
    args = parser.parse_args(list(argv) if argv is not None else None)

    if args.faults is not None and args.target != "resilience":
        parser.error("--faults only applies to the 'resilience' target")
    if args.faults:
        try:    # reject a malformed spec before any experiment runs
            FaultPlan.parse(args.faults, seed=args.seed)
        except FaultError as exc:
            parser.error(f"bad --faults spec: {exc}")
    scale = _SCALES[args.scale]
    targets = TARGETS if args.target == "all" else (args.target,)
    for target in targets:
        started = time.perf_counter()
        tables = _run_target(target, scale, faults=args.faults,
                             fault_seed=args.seed)
        elapsed = time.perf_counter() - started
        for i, table in enumerate(tables):
            print(table.format())
            print(f"# wall time: {elapsed:.1f} s")
            print()
            if args.csv is not None:
                args.csv.mkdir(parents=True, exist_ok=True)
                suffix = f"_{i}" if len(tables) > 1 else ""
                path = args.csv / f"{target}{suffix}_{scale.name}.csv"
                path.write_text(table.to_csv() + "\n")
                print(f"# wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
