"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    repro-experiments <target> [--scale small|medium|paper] [--csv DIR]

where *target* is one of ``fig05``, ``fig06``, ``fig07``, ``fig08``,
``fig09``, ``fig10``, ``fig11``, ``headline``, ``resilience`` or ``all``.
Every run prints the paper-style series; ``--csv`` additionally writes one
CSV per table. The ``resilience`` target accepts ``--faults`` (the
:meth:`repro.faults.FaultPlan.parse` syntax) and ``--seed`` to replace the
built-in fault sweep with a custom plan::

    python -m repro resilience --faults "crash:apprank=0,node=1,t=0.5" --seed 7

The ``trace`` target records one fully instrumented run (see
:mod:`repro.obs`) instead of a sweep, prints the critical-path makespan
breakdown, and exports a Chrome trace-event JSON loadable in Perfetto
(https://ui.perfetto.dev) and/or a Paraver triple::

    python -m repro trace headline --out trace.json --paraver trace

``--obs`` turns the same instrumentation on for any ordinary target and
reports how much was recorded — useful for overhead checks and for
driving the obs API from the harness.

``--policy`` / ``--lend-policy`` swap registered policy-kernel strategies
(:mod:`repro.policies`) into any target's runs; ``policies`` lists what
is registered, and ``ablation`` sweeps every offload policy over the
headline MicroPP workload::

    python -m repro policies
    python -m repro fig08 --policy locality
    python -m repro ablation --scale small --policy work-sharing

The ``check`` target runs the invariant sanitizer and differential/
metamorphic oracles (:mod:`repro.validate`) over a conformance workload
(defaults to the fast ``small`` scale), and ``--check`` arms the same
sanitizer on every run of any ordinary target::

    python -m repro check headline
    python -m repro check resilience --faults "crash:apprank=0,node=1,t=0.5"
    python -m repro fig08 --check

The ``campaign`` target shards a sweep grid across a fault-tolerant
master/worker process pool (:mod:`repro.campaign`) with a crash-safe
journal: an interrupted or killed campaign resumes from the same
``--out`` directory, skipping completed cells. ``--chaos`` arms the
built-in self-test (a worker is SIGKILLed, a cell is wedged past its
timeout) to prove the recovery paths::

    python -m repro campaign --grid "app=synthetic;nodes=2,4;seed=0..9" \\
        --out sweep --workers 8
    python -m repro campaign --grid @imbalance-sweep --out sweep8
    python -m repro campaign --grid @smoke --out /tmp/c --chaos --seed 1

On Ctrl-C the campaign terminates its workers, flushes the journal,
prints the exact resume command, and exits 130.

The ``jobs`` target simulates a whole cluster of jobs arriving over
time and sharing nodes under cross-job DROM reallocation
(:mod:`repro.jobs`): ``--trace`` picks a seeded arrival trace
(``poisson:...``, ``bursty:...``, ``diurnal:...``, ``single:...``) and
``--realloc-policy`` the arbitration rule (any registered reallocation
policy — ``local``, ``global``, ``gavel``). ``--check`` arms the
cross-job sanitizer, ``--obs`` the event bus; the ``multijob`` figure
target sweeps offered load against all three policies::

    python -m repro jobs --trace poisson:seed=1,rate=0.5,n=8 \\
        --realloc-policy gavel --check
    python -m repro multijob --scale small

The ``bench`` target measures the simulator itself on the wall clock
(:mod:`repro.perf`): events/sec, per-phase timings, peak RSS and
per-subsystem attribution over a pinned workload, written to a
schema-versioned ``BENCH_<target>.json`` that
``tools/compare_bench.py`` diffs against the committed trajectory::

    python -m repro bench headline --repeat 3
    python -m repro bench synthetic --profile --bench-dir /tmp/bench
    python tools/compare_bench.py headline --report-only
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from contextlib import ExitStack
from pathlib import Path
from typing import Iterable

from .errors import CampaignError, ExperimentError, FaultError
from .experiments import (CAMPAIGN_GRIDS, MEDIUM, PAPER, SMALL, TINY,
                          ResultTable, Scale, fig05_policies,
                          fig06_applications, fig07_local, fig08_sweep,
                          fig09_traces, fig10_slownode, fig11_convergence,
                          fig_policies_ablation, force_observability,
                          force_policies, force_validation, headline,
                          resilience, traced)
from .faults import FaultPlan
from .ioutil import atomic_write_text
from .nanos.config import RuntimeConfig
from .policies import LEND_POLICIES, OFFLOAD_POLICIES

__all__ = ["main"]

_SCALES = {"tiny": TINY, "small": SMALL, "medium": MEDIUM, "paper": PAPER}


def _run_target(target: str, scale: Scale, faults: str | None = None,
                fault_seed: int = 0,
                policies: list[str] | None = None) -> list[ResultTable]:
    if target == "fig05":
        return [fig05_policies.run(scale)]
    if target == "fig06":
        micropp, nbody = fig06_applications.run(scale)
        return [micropp, nbody]
    if target == "fig07":
        micropp, nbody = fig07_local.run(scale)
        return [micropp, nbody]
    if target == "fig08":
        return [fig08_sweep.run(scale)]
    if target == "fig09":
        return [fig09_traces.run(scale)]
    if target == "fig10":
        return [fig10_slownode.run(scale)]
    if target == "fig11":
        return [fig11_convergence.run(scale)]
    if target == "headline":
        return [headline.run(scale)]
    if target == "resilience":
        return [resilience.run(scale, faults=faults, fault_seed=fault_seed)]
    if target == "ablation":
        return [fig_policies_ablation.run(scale, policies=policies)]
    if target == "multijob":
        from .experiments import fig_multijob
        return [fig_multijob.run(scale)]
    raise ValueError(f"unknown target {target!r}")


TARGETS = ("fig05", "fig06", "fig07", "fig08", "fig09", "fig10", "fig11",
           "headline", "resilience", "ablation", "multijob")

#: flags that only make sense for the ``campaign`` target
_CAMPAIGN_FLAGS = ("--grid", "--workers", "--chaos", "--cell-timeout",
                   "--max-failures", "--max-requeues")


def _fail(message: str) -> int:
    """One-line CLI error (no usage dump, no traceback); exits 2."""
    print(f"repro-experiments: error: {message}", file=sys.stderr)
    return 2


def _campaign_progress(event: dict) -> None:
    """Render orchestration events as compact stderr progress lines."""
    kind = event.get("event")
    if kind == "resume":
        print(f"# campaign: resuming — {event['resumed']}/{event['total']} "
              "cells already journalled", file=sys.stderr)
    elif kind == "done":
        pace = ""
        if event.get("cells_per_sec"):
            pace = f", {event['cells_per_sec']:.2f} cells/s"
            if event.get("eta") is not None:
                pace += f", ETA {event['eta']:.0f}s"
        print(f"# [{event['completed']}/{event['total']}] {event['cell']} "
              f"done (attempt {event['attempt']}, {event['wall']:.2f}s"
              f"{pace})", file=sys.stderr)
    elif kind == "failed":
        print(f"# cell {event['cell']} failed (attempt {event['attempt']}): "
              f"{event['error']}", file=sys.stderr)
    elif kind == "requeued":
        print(f"# cell {event['cell']} requeued ({event['reason']})",
              file=sys.stderr)
    elif kind == "quarantined":
        print(f"# cell {event['cell']} QUARANTINED", file=sys.stderr)
    elif kind in ("chaos-kill", "chaos-hang", "kill", "crash"):
        detail = event.get("cell") or f"worker {event.get('worker')}"
        print(f"# {kind}: {detail}", file=sys.stderr)


def _resume_command(args) -> str:
    """The exact invocation that resumes an interrupted campaign."""
    parts = ["python -m repro campaign", f"--grid '{args.grid}'",
             f"--out {args.out}"]
    if args.workers is not None:
        parts.append(f"--workers {args.workers}")
    if args.chaos:
        parts.append("--chaos")
    if args.check:
        parts.append("--check")
    return " ".join(parts)


def _run_campaign(args) -> int:
    """The ``campaign`` target: shard a grid across a worker pool."""
    from .campaign import CampaignGrid, run_campaign
    if args.grid is None:
        return _fail("campaign needs --grid (a sweep spec or @preset; "
                     f"presets: {', '.join(sorted(CAMPAIGN_GRIDS))})")
    spec = args.grid
    if spec.startswith("@"):
        preset = spec[1:]
        if preset not in CAMPAIGN_GRIDS:
            return _fail(f"unknown campaign preset {preset!r} "
                         f"(known: {', '.join(sorted(CAMPAIGN_GRIDS))})")
        spec = CAMPAIGN_GRIDS[preset]
        args.grid = spec        # resume command must name the real grid
    try:
        grid = CampaignGrid.parse(spec)
    except CampaignError as exc:
        return _fail(str(exc))
    workers = args.workers or max(1, (os.cpu_count() or 2) - 1)
    started = time.perf_counter()
    try:
        report = run_campaign(
            grid, args.out, workers=workers,
            cell_timeout=args.cell_timeout,
            max_failures=args.max_failures,
            max_requeues=args.max_requeues,
            check=args.check, chaos=bool(args.chaos),
            chaos_seed=args.seed, progress=_campaign_progress)
    except CampaignError as exc:
        return _fail(str(exc))
    if report.interrupted:
        print("# campaign interrupted — journal flushed; resume with:",
              file=sys.stderr)
        print(f"#   {_resume_command(args)}", file=sys.stderr)
        return 130
    print(report.format())
    print(f"# wall time: {time.perf_counter() - started:.1f} s")
    print(f"# journal: {report.out_dir / 'journal.jsonl'}")
    print(f"# results: {report.csv_path}")
    if args.csv is not None:
        args.csv.mkdir(parents=True, exist_ok=True)
        path = args.csv / "campaign.csv"
        atomic_write_text(path, report.table.to_csv() + "\n")
        print(f"# wrote {path}")
    return report.exit_code


def _print_policies() -> None:
    """The ``policies`` target: registered strategies and the defaults."""
    defaults = RuntimeConfig()
    default_by_kind = {
        "offload": defaults.offload_policy,
        "lend": defaults.lend_policy,
        "reclaim": defaults.reclaim_policy,
        "reallocation": defaults.policy,
    }
    from .policies import _REGISTRIES
    print("Registered policy-kernel strategies (repro.policies):")
    for kind, registry in _REGISTRIES.items():
        names = ", ".join(
            f"{name}*" if name == default_by_kind[kind] else name
            for name in registry.names())
        print(f"  {kind:<12} {names}")
    print("(* = RuntimeConfig default; select with --policy/--lend-policy,"
          " or register more via the repro.<kind>_policies entry points)")


def main(argv: Iterable[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables/figures of 'Transparent load "
                    "balancing of MPI programs using OmpSs-2@Cluster and "
                    "DLB' (ICPP 2022) on the simulator.")
    parser.add_argument("target", choices=TARGETS + ("all", "trace",
                                                     "policies", "check",
                                                     "campaign", "bench",
                                                     "jobs"),
                        help="which figure/table to regenerate, 'trace' "
                             "to record one instrumented run, 'policies' "
                             "to list the registered policy-kernel "
                             "strategies, 'check' to run the invariant "
                             "sanitizer over a conformance workload, "
                             "'campaign' to shard a sweep grid across a "
                             "fault-tolerant worker pool, 'bench' to "
                             "measure the simulator's wall-clock "
                             "performance and write BENCH_<target>.json, "
                             "or 'jobs' to run a multi-job arrival trace "
                             "under cross-job DROM reallocation")
    parser.add_argument("experiment", nargs="?", default=None,
                        help="trace/check/bench only: which workload to run "
                             f"(trace: {', '.join(traced.TRACE_TARGETS)}; "
                             "check: headline, synthetic, nbody, resilience; "
                             "bench: headline, synthetic, nbody — default "
                             "headline)")
    parser.add_argument("--scale", choices=sorted(_SCALES), default=None,
                        help="experiment sizing; 'paper' uses the published "
                             "parameters (48-core nodes, 100 tasks/core) "
                             "and is slow (default: medium; check: small)")
    parser.add_argument("--csv", type=Path, default=None, metavar="DIR",
                        help="also write each table as CSV into DIR")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="resilience/trace/check: custom fault plan in "
                             "the FaultPlan.parse syntax, e.g. "
                             "'crash:apprank=0,node=1,t=0.5;msg:loss=0.01'")
    parser.add_argument("--seed", type=int, default=0,
                        help="resilience/trace/check: seed for the fault "
                             "plan's stochastic draws")
    parser.add_argument("--out", type=Path, default=None, metavar="PATH",
                        help="trace: write the Chrome trace-event JSON here "
                             "(load it at https://ui.perfetto.dev); "
                             "campaign: the output directory holding the "
                             "journal, results.csv and report.json "
                             "(default: campaign-out)")
    parser.add_argument("--paraver", type=Path, default=None, metavar="BASE",
                        help="trace only: also write BASE.prv/.pcf/.row "
                             "Paraver files")
    parser.add_argument("--obs", action="store_true",
                        help="instrument every run of an ordinary target "
                             "with the repro.obs event bus and report what "
                             "was recorded")
    parser.add_argument("--check", action="store_true",
                        help="arm the repro.validate invariant sanitizer on "
                             "every run of an ordinary target and report "
                             "what was checked")
    parser.add_argument("--policy", default=None, metavar="NAME",
                        help="offload placement policy for every run "
                             "(ablation: restrict the sweep to NAME plus "
                             "the tentative reference); see 'policies'")
    parser.add_argument("--lend-policy", default=None, metavar="NAME",
                        help="LeWI lending policy for every run; see "
                             "'policies'")
    parser.add_argument("--grid", default=None, metavar="SPEC",
                        help="campaign only: the sweep grid, e.g. "
                             "'app=synthetic;nodes=2,4;seed=0..9', or a "
                             "preset via @name "
                             f"({', '.join(sorted(CAMPAIGN_GRIDS))})")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="campaign only: worker processes "
                             "(default: cores - 1)")
    parser.add_argument("--chaos", action="store_true",
                        help="campaign only: arm the chaos self-test "
                             "(SIGKILL a worker and wedge a cell mid-run "
                             "to prove the recovery paths; seeded by "
                             "--seed)")
    parser.add_argument("--cell-timeout", type=float, default=300.0,
                        metavar="SEC",
                        help="campaign only: per-cell wall-clock budget "
                             "before the worker is killed and the cell "
                             "requeued (default: 300)")
    parser.add_argument("--max-failures", type=int, default=3, metavar="N",
                        help="campaign only: cell errors before quarantine "
                             "(default: 3)")
    parser.add_argument("--max-requeues", type=int, default=10, metavar="N",
                        help="campaign only: crash/hang interruptions of "
                             "one cell before quarantine (default: 10)")
    parser.add_argument("--trace", default=None, metavar="SPEC",
                        help="jobs only: the arrival trace, e.g. "
                             "'poisson:seed=1,rate=0.5,n=8', "
                             "'bursty:seed=2,n=6,burst=3,gap=2.0', "
                             "'diurnal:seed=3,n=8,period=20', or "
                             "'single:app=synthetic,nodes=2'")
    parser.add_argument("--realloc-policy", default=None, metavar="NAME",
                        help="jobs only: the cross-job reallocation policy "
                             "(default: gavel); see 'policies'")
    parser.add_argument("--cluster-nodes", type=int, default=None,
                        metavar="N",
                        help="jobs only: nodes in the shared cluster "
                             "(default: the trace's largest job, min 2)")
    parser.add_argument("--repeat", type=int, default=None, metavar="N",
                        help="bench only: measurement repeats (default: 3); "
                             "simulated outcomes must be identical across "
                             "them")
    parser.add_argument("--profile", action="store_true",
                        help="bench only: additionally profile one run "
                             "under cProfile and write BENCH_<target>"
                             ".pstats + .folded collapsed stacks")
    parser.add_argument("--bench-dir", type=Path, default=None, metavar="DIR",
                        help="bench only: where to write BENCH_<target>"
                             ".json (default: current directory)")
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return _dispatch(parser, args)
    except KeyboardInterrupt:
        # campaign handles its own interrupt (workers reaped, journal
        # flushed, resume command printed); everything else just exits
        # with the conventional SIGINT status.
        print("# interrupted", file=sys.stderr)
        return 130


def _dispatch(parser: argparse.ArgumentParser, args) -> int:
    """Validate cross-flag constraints and run the selected target."""

    if args.policy is not None and args.policy not in OFFLOAD_POLICIES:
        parser.error(f"unknown offload policy {args.policy!r}; registered: "
                     f"{', '.join(OFFLOAD_POLICIES.names())}")
    if args.lend_policy is not None and args.lend_policy not in LEND_POLICIES:
        parser.error(f"unknown lend policy {args.lend_policy!r}; registered: "
                     f"{', '.join(LEND_POLICIES.names())}")
    if args.target == "policies":
        _print_policies()
        return 0

    if args.target != "bench":
        if args.repeat is not None:
            parser.error("--repeat only applies to the 'bench' target")
        if args.profile:
            parser.error("--profile only applies to the 'bench' target")
        if args.bench_dir is not None:
            parser.error("--bench-dir only applies to the 'bench' target")
    if args.target != "jobs":
        if args.trace is not None:
            parser.error("--trace only applies to the 'jobs' target")
        if args.realloc_policy is not None:
            parser.error("--realloc-policy only applies to the 'jobs' "
                         "target")
        if args.cluster_nodes is not None:
            parser.error("--cluster-nodes only applies to the 'jobs' "
                         "target")
    if args.target != "campaign":
        for flag in _CAMPAIGN_FLAGS:
            name = flag.lstrip("-").replace("-", "_")
            default = {"cell_timeout": 300.0, "max_failures": 3,
                       "max_requeues": 10}.get(name)
            if getattr(args, name) not in (None, False, default):
                parser.error(f"{flag} only applies to the 'campaign' target")
    if args.target == "campaign":
        if args.experiment is not None:
            parser.error("campaign does not take an experiment name")
        if args.out is None:
            args.out = Path("campaign-out")
        return _run_campaign(args)

    if args.faults is not None and args.target not in ("resilience", "trace",
                                                       "check"):
        parser.error("--faults only applies to 'resilience', 'trace' and "
                     "'check'")
    plan = None
    if args.faults:
        try:    # reject a malformed spec before any experiment runs
            plan = FaultPlan.parse(args.faults, seed=args.seed)
        except FaultError as exc:
            return _fail(f"bad --faults spec: {exc}")
    if args.scale is not None:
        scale = _SCALES[args.scale]
    else:   # checks/benches favour quick feedback; the rest paper sizing
        scale = SMALL if args.target in ("check", "bench", "jobs") else MEDIUM

    if args.target == "jobs":
        from .errors import AllocationError, JobsError, ValidationError
        from .jobs import JobTrace, run_trace
        if args.experiment is not None:
            parser.error("jobs does not take an experiment name")
        if args.trace is None:
            parser.error("jobs needs --trace (e.g. "
                         "'poisson:seed=1,rate=0.5,n=8')")
        started = time.perf_counter()
        try:
            result = run_trace(JobTrace.parse(args.trace),
                               policy=args.realloc_policy or "gavel",
                               scale=scale,
                               cluster_nodes=args.cluster_nodes,
                               check=args.check, obs=args.obs)
        except (JobsError, AllocationError, ValidationError) as exc:
            return _fail(str(exc))
        print(result.table().format())
        if result.sanitizer is not None:
            checked = result.sanitizer.summary()
            print(f"# check: {checked['allocations']} allocations, "
                  f"{checked['grants']} grants, "
                  f"{checked['progress']} progress updates, "
                  f"{checked['finishes']} finishes — all cross-job "
                  "invariants held")
        if result.obs is not None:
            summary = result.obs.bus.summary()
            print(f"# obs: {summary['spans']} spans, "
                  f"{summary['instants']} instants, "
                  f"{summary['counter_samples']} counter samples")
        if args.csv is not None:
            args.csv.mkdir(parents=True, exist_ok=True)
            path = args.csv / f"jobs_{scale.name}.csv"
            atomic_write_text(path, result.table().to_csv() + "\n")
            print(f"# wrote {path}")
        print(f"# wall time: {time.perf_counter() - started:.1f} s")
        return 0

    if args.target == "bench":
        from .perf import bench as bench_mod
        name = args.experiment or "headline"
        if name not in bench_mod.BENCH_TARGETS:
            parser.error("bench needs a workload to measure: "
                         f"one of {', '.join(bench_mod.BENCH_TARGETS)}")
        started = time.perf_counter()
        try:
            result = bench_mod.run_bench(
                name, scale, repeat=args.repeat or 3,
                progress=lambda msg: print(f"# {msg}", file=sys.stderr))
        except ExperimentError as exc:
            return _fail(str(exc))
        bench_dir = args.bench_dir if args.bench_dir is not None else Path(".")
        path = bench_mod.write_record(result, bench_dir)
        print(result.format())
        print(f"# wrote {path}")
        if args.profile:
            pstats_path, folded_path = bench_mod.write_profile(
                name, scale, bench_dir)
            print(f"# wrote {pstats_path}")
            print(f"# wrote {folded_path}")
        print(f"# wall time: {time.perf_counter() - started:.1f} s")
        return 0

    if args.target == "check":
        from .validate import CHECK_TARGETS, run_check
        if args.check:
            parser.error("--check is implied by the 'check' target")
        if args.experiment not in CHECK_TARGETS:
            parser.error("check needs an experiment to validate: "
                         f"one of {', '.join(CHECK_TARGETS)}")
        started = time.perf_counter()
        with ExitStack() as stack:
            if args.policy is not None or args.lend_policy is not None:
                stack.enter_context(force_policies(offload=args.policy,
                                                   lend=args.lend_policy))
            report = run_check(args.experiment, scale, faults=args.faults,
                               fault_seed=args.seed)
        print(report.format())
        print(f"# wall time: {time.perf_counter() - started:.1f} s")
        return 0

    if args.target == "trace":
        if args.obs:
            parser.error("--obs is implied by the 'trace' target")
        if args.experiment not in traced.TRACE_TARGETS:
            parser.error("trace needs an experiment to record: "
                         f"one of {', '.join(traced.TRACE_TARGETS)}")
        started = time.perf_counter()
        trace_run = traced.run(args.experiment, scale, out=args.out,
                               paraver=args.paraver, faults=plan)
        print(trace_run.format())
        print(f"# wall time: {time.perf_counter() - started:.1f} s")
        return 0
    if args.experiment is not None:
        parser.error("an experiment name only applies to the 'trace' and "
                     "'check' targets")
    if args.out is not None or args.paraver is not None:
        parser.error("--out/--paraver only apply to the 'trace' target")

    targets = TARGETS if args.target == "all" else (args.target,)
    for target in targets:
        started = time.perf_counter()
        # The ablation sweeps the offload policy itself: --policy narrows
        # its sweep instead of forcing one name over every run.
        restrict = ([args.policy] if target == "ablation" and args.policy
                    else None)
        offload_override = None if target == "ablation" else args.policy
        with ExitStack() as stack:
            observed = (stack.enter_context(force_observability())
                        if args.obs else [])
            validated = (stack.enter_context(force_validation())
                         if args.check else [])
            if offload_override is not None or args.lend_policy is not None:
                stack.enter_context(force_policies(offload=offload_override,
                                                   lend=args.lend_policy))
            tables = _run_target(target, scale, faults=args.faults,
                                 fault_seed=args.seed, policies=restrict)
        elapsed = time.perf_counter() - started
        for i, table in enumerate(tables):
            print(table.format())
            print(f"# wall time: {elapsed:.1f} s")
            print()
            if args.csv is not None:
                suffix = f"_{i}" if len(tables) > 1 else ""
                path = args.csv / f"{target}{suffix}_{scale.name}.csv"
                # temp-file + rename: an interrupted run never leaves a
                # truncated CSV (same discipline as the campaign journal)
                atomic_write_text(path, table.to_csv() + "\n")
                print(f"# wrote {path}")
        if observed:
            totals = {"spans": 0, "instants": 0, "counter_samples": 0}
            for obs in observed:
                summary = obs.bus.summary()
                for key in totals:
                    totals[key] += summary[key]
            print(f"# obs: {len(observed)} runs instrumented, "
                  f"{totals['spans']} spans, {totals['instants']} instants, "
                  f"{totals['counter_samples']} counter samples")
            print()
        if validated:
            checked = {"events": 0, "messages": 0, "tasks": 0,
                       "dlb_checks": 0}
            for sanitizer in validated:
                summary = sanitizer.summary()
                for key in checked:
                    checked[key] += summary[key]
            print(f"# check: {len(validated)} runs validated, "
                  f"{checked['events']} events, "
                  f"{checked['messages']} messages, "
                  f"{checked['tasks']} tasks, "
                  f"{checked['dlb_checks']} DLB snapshots — all invariants "
                  "held")
            print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
