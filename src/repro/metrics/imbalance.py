"""Imbalance metrics (paper §6.1, Eq. 2).

``imbalance = max(load) / mean(load) >= 1`` — dimensionless, 1.0 is
perfect, and the value directly scales the critical path: an imbalance of
2.0 means the critical path is roughly twice the perfectly balanced one.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import ReproError
from .timeline import StepSeries

__all__ = ["imbalance", "node_imbalance_series", "perfect_time", "worst_time"]


def imbalance(loads: Iterable[float]) -> float:
    """Eq. 2 over any per-entity load vector (appranks, nodes, ...)."""
    arr = np.asarray(list(loads), dtype=float)
    if arr.size == 0:
        raise ReproError("imbalance of an empty load vector")
    if np.any(arr < 0):
        raise ReproError("negative loads")
    mean = arr.mean()
    if mean == 0:
        return 1.0
    return float(arr.max() / mean)


def perfect_time(loads: Iterable[float], cores_per_entity: float = 1.0) -> float:
    """Lower bound on time-to-solution with perfect balancing.

    *loads* are per-entity work amounts (core·seconds); the bound is the
    average load per core across the whole machine.
    """
    arr = np.asarray(list(loads), dtype=float)
    if arr.size == 0 or cores_per_entity <= 0:
        raise ReproError("invalid perfect_time inputs")
    return float(arr.sum() / (arr.size * cores_per_entity))


def worst_time(loads: Iterable[float], cores_per_entity: float = 1.0) -> float:
    """Time-to-solution with no balancing: the most loaded entity's time."""
    arr = np.asarray(list(loads), dtype=float)
    if arr.size == 0 or cores_per_entity <= 0:
        raise ReproError("invalid worst_time inputs")
    return float(arr.max() / cores_per_entity)


def node_imbalance_series(busy_by_node: Sequence[StepSeries],
                          times: Sequence[float],
                          window: float,
                          min_avg_load: float = 0.0) -> np.ndarray:
    """Figure 11's signal: (max node load) / (average node load) over time.

    The "current load" is the trailing-window average of busy cores on each
    node (§7.6 measures load as "the total average number of busy cores").
    Samples where the cluster is (nearly) idle — average load at or below
    *min_avg_load* cores — are returned as NaN: an idle machine is not
    "balanced", there is simply nothing to measure.
    """
    if not busy_by_node:
        raise ReproError("need at least one node series")
    samples = np.vstack([s.windowed_mean(times, window) for s in busy_by_node])
    peak = samples.max(axis=0)
    avg = samples.mean(axis=0)
    out = np.full(len(times), np.nan)
    active = avg > max(min_avg_load, 1e-12)
    out[active] = peak[active] / avg[active]
    return out
