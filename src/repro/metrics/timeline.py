"""Step-function time series.

Traces in the paper (Figs 5, 9, 11) are piecewise-constant signals: number
of busy cores, number of owned cores, imbalance over time.
:class:`StepSeries` stores exact change points and supports the operations
the figures need: value lookup, exact integration, resampling onto a grid,
and windowed averaging.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Sequence

import numpy as np

from ..errors import ReproError

__all__ = ["StepSeries"]


class StepSeries:
    """Right-continuous step function built from (time, value) change points."""

    def __init__(self, initial_value: float = 0.0, start_time: float = 0.0) -> None:
        self._times: list[float] = [start_time]
        self._values: list[float] = [float(initial_value)]

    def __len__(self) -> int:
        return len(self._times)

    @property
    def current(self) -> float:
        return self._values[-1]

    @property
    def last_time(self) -> float:
        return self._times[-1]

    def set(self, time: float, value: float) -> None:
        """Record the signal changing to *value* at *time* (monotone times)."""
        if time < self._times[-1]:
            raise ReproError(
                f"step series time went backwards: {time} < {self._times[-1]}")
        if value == self._values[-1]:
            return
        if time == self._times[-1]:
            self._values[-1] = float(value)
            # Collapse if the previous point now carries the same value.
            if len(self._values) >= 2 and self._values[-2] == self._values[-1]:
                self._times.pop()
                self._values.pop()
            return
        self._times.append(time)
        self._values.append(float(value))

    def add(self, time: float, delta: float) -> None:
        """Record the signal changing by *delta* at *time*."""
        self.set(time, self._values[-1] + delta)

    def value_at(self, time: float) -> float:
        """Value of the step function at *time* (initial value before start)."""
        i = bisect_right(self._times, time) - 1
        return self._values[max(i, 0)]

    def integrate(self, start: float, end: float) -> float:
        """Exact ∫ value dt over [start, end]."""
        if end < start:
            raise ReproError(f"inverted integration range [{start}, {end}]")
        if end == start:
            return 0.0
        total = 0.0
        cursor = start
        i = max(bisect_right(self._times, start) - 1, 0)
        while cursor < end:
            next_change = self._times[i + 1] if i + 1 < len(self._times) else end
            upper = min(next_change, end)
            if upper > cursor:
                total += self._values[i] * (upper - cursor)
                cursor = upper
            i += 1
            if i >= len(self._times):
                if cursor < end:
                    total += self._values[-1] * (end - cursor)
                break
        return total

    def mean(self, start: float, end: float) -> float:
        """Time-average of the signal over [start, end]."""
        if end <= start:
            return self.value_at(start)
        return self.integrate(start, end) / (end - start)

    def resample(self, times: Sequence[float]) -> np.ndarray:
        """Values at each requested time (vectorised lookup)."""
        times_arr = np.asarray(times, dtype=float)
        idx = np.searchsorted(self._times, times_arr, side="right") - 1
        idx = np.clip(idx, 0, len(self._values) - 1)
        return np.asarray(self._values, dtype=float)[idx]

    def windowed_mean(self, times: Sequence[float], window: float) -> np.ndarray:
        """Trailing-window average at each requested time."""
        if window <= 0:
            raise ReproError(f"window must be positive, got {window}")
        return np.array([self.integrate(max(t - window, self._times[0]), t)
                         / min(window, max(t - self._times[0], 1e-12))
                         for t in times])

    def change_points(self) -> list[tuple[float, float]]:
        """The exact (time, value) change points, in order."""
        return list(zip(self._times, self._values))

    @classmethod
    def sum_of(cls, series: Iterable["StepSeries"]) -> "StepSeries":
        """Pointwise sum of several step series (exact, at merged points)."""
        series = list(series)
        if not series:
            raise ReproError("sum_of needs at least one series")
        times = sorted({t for s in series for t, _v in s.change_points()})
        out = cls(initial_value=sum(s.value_at(times[0]) for s in series),
                  start_time=times[0])
        for t in times[1:]:
            out.set(t, sum(s.value_at(t) for s in series))
        return out
