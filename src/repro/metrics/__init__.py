"""Measurement utilities: imbalance, step-function timelines, traces."""

from .export import (resampled_matrix, trace_to_csv, trace_to_json,
                     trace_to_records)
from .paraver import export_paraver
from .imbalance import (imbalance, node_imbalance_series, perfect_time,
                        worst_time)
from .report import GLYPHS, render_series, render_trace
from .timeline import StepSeries
from .trace import TraceRecorder

__all__ = [
    "imbalance",
    "node_imbalance_series",
    "perfect_time",
    "worst_time",
    "StepSeries",
    "TraceRecorder",
    "render_series",
    "render_trace",
    "GLYPHS",
    "trace_to_records",
    "trace_to_csv",
    "trace_to_json",
    "resampled_matrix",
    "export_paraver",
]
