"""Trace recording: busy and owned core timelines per (node, apprank).

The paper's trace figures (5, 9, 11) plot exactly two signals per
node/apprank pair: cores *busy* (executing tasks) and cores *owned* (DROM).
Busy changes are recorded exactly (workers call :meth:`busy_delta` on every
task start/stop); ownership is sampled periodically plus at every DROM
change notification, which is exact enough for the figures while staying
cheap.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import ReproError
from ..sim.engine import Simulator
from .timeline import StepSeries

__all__ = ["TraceRecorder"]


class TraceRecorder:
    """Collects step series keyed by (metric, node, apprank).

    Point events (faults, recoveries, fallbacks) are stored on a private
    :class:`repro.obs.bus.EventBus` rather than a bare list, so the same
    structured records feed the Paraver point-event export and the legacy
    tuple view (:attr:`events`). The import is lazy on purpose: a recorder
    only exists on traced runs, and untraced runs must never load
    :mod:`repro.obs` (the zero-overhead guarantee).
    """

    def __init__(self, sim: Simulator) -> None:
        from ..obs.bus import EventBus
        self.sim = sim
        self._series: dict[tuple[str, int, int], StepSeries] = {}
        #: structured point-event storage (instants with cat="trace")
        self.bus = EventBus(clock=lambda: sim.now)

    def _get(self, metric: str, node: int, apprank: int) -> StepSeries:
        key = (metric, node, apprank)
        series = self._series.get(key)
        if series is None:
            series = StepSeries(initial_value=0.0, start_time=0.0)
            self._series[key] = series
        return series

    # -- recording hooks ----------------------------------------------------

    def busy_delta(self, now: float, node: int, apprank: int, delta: int) -> None:
        """Record a busy-core change (+1 task start / -1 completion)."""
        self._get("busy", node, apprank).add(now, delta)

    def set_owned(self, now: float, node: int, apprank: int, count: int) -> None:
        """Record the apprank's DROM-owned core count on *node*."""
        self._get("owned", node, apprank).set(now, count)

    def record_scalar(self, metric: str, now: float, value: float,
                      node: int = -1, apprank: int = -1) -> None:
        """Free-form extra signals (queue depths, imbalance, ...)."""
        self._get(metric, node, apprank).set(now, value)

    def add_event(self, now: float, kind: str, node: int = -1,
                  apprank: int = -1, **detail) -> None:
        """Record a point event (fault injected, task recovered, ...)."""
        from ..obs.events import CAT_TRACE, Track
        if "apprank" in detail:
            raise ReproError("'apprank' is a positional add_event parameter")
        self.bus.emit_instant(kind, CAT_TRACE, Track(node, "trace"),
                              time=now, apprank=apprank, **detail)

    @property
    def events(self) -> list[tuple[float, str, int, int, dict]]:
        """Legacy tuple view: (time, kind, node, apprank, detail) records."""
        out = []
        for instant in self.bus.instants:
            detail = dict(instant.args)
            apprank = detail.pop("apprank", -1)
            out.append((instant.time, instant.name, instant.track.node,
                        apprank, detail))
        return out

    def events_of(self, kind: str) -> list[tuple[float, str, int, int, dict]]:
        """All recorded point events of one kind, in occurrence order."""
        return [e for e in self.events if e[1] == kind]

    # -- queries -----------------------------------------------------------

    def series(self, metric: str, node: int, apprank: int) -> StepSeries:
        """The recorded step series for (metric, node, apprank)."""
        key = (metric, node, apprank)
        if key not in self._series:
            raise ReproError(f"no trace series for {key}")
        return self._series[key]

    def has_series(self, metric: str, node: int, apprank: int) -> bool:
        """Whether anything was recorded for this key."""
        return (metric, node, apprank) in self._series

    def appranks_on_node(self, metric: str, node: int) -> list[int]:
        """Appranks with a recorded series of *metric* on *node*."""
        return sorted(a for (m, n, a) in self._series if m == metric and n == node)

    def nodes(self, metric: str) -> list[int]:
        """Nodes with any recorded series of *metric*."""
        return sorted({n for (m, n, _a) in self._series if m == metric})

    def node_busy_series(self, node: int) -> StepSeries:
        """Total busy cores on *node* (summed over appranks)."""
        appranks = self.appranks_on_node("busy", node)
        if not appranks:
            return StepSeries()
        return StepSeries.sum_of([self.series("busy", node, a) for a in appranks])

    def busy_by_node(self, nodes: Iterable[int]) -> list[StepSeries]:
        """Total-busy series for each requested node."""
        return [self.node_busy_series(n) for n in nodes]
