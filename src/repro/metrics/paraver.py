"""Paraver trace export (.prv / .pcf / .row).

The paper's timelines (Figures 5 and 9) are Paraver views; this module
writes a :class:`~repro.metrics.trace.TraceRecorder` as a loadable Paraver
trace triple:

* one Paraver *task* per apprank, one *thread* per (apprank, node) worker;
* event type 90000001 carries the worker's busy-core count at each change
  point, 90000002 the DROM-owned core count;
* event type 90000003 carries point events (faults, recoveries, ...) from
  the recorder's event bus, with the event kinds enumerated as values in
  the .pcf so Paraver renders them as named flags;
* state records mark a thread Running (1) while it has any busy core and
  Idle (0) otherwise — giving the familiar coloured timeline.

Times are nanoseconds (Paraver's unit), scaled from simulated seconds.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from ..errors import ReproError
from .trace import TraceRecorder

__all__ = ["export_paraver", "BUSY_EVENT_TYPE", "OWNED_EVENT_TYPE",
           "POINT_EVENT_TYPE"]

BUSY_EVENT_TYPE = 90000001
OWNED_EVENT_TYPE = 90000002
POINT_EVENT_TYPE = 90000003

_PCF_TEMPLATE = """DEFAULT_OPTIONS

LEVEL               THREAD
UNITS               NANOSEC
LOOK_BACK           100
SPEED               1
FLAG_ICONS          ENABLED
NUM_OF_STATE_COLORS 1000
YMAX_SCALE          37


DEFAULT_SEMANTIC

THREAD_FUNC          State As Is


STATES
0    Idle
1    Running


EVENT_TYPE
9    {busy}    Busy cores (repro simulator)
9    {owned}    DROM-owned cores (repro simulator)
"""

_PCF_POINT_TEMPLATE = """

EVENT_TYPE
9    {point}    Point events (repro simulator)
VALUES
{values}
"""


def _threads(trace: TraceRecorder) -> list[tuple[int, int]]:
    """(apprank, node) pairs with any busy series, apprank-major order."""
    pairs = sorted(
        {(apprank, node)
         for node in trace.nodes("busy")
         for apprank in trace.appranks_on_node("busy", node)})
    if not pairs:
        raise ReproError("trace holds no busy series to export")
    return pairs


def export_paraver(trace: TraceRecorder, end_time: float, basename: Path,
                   cores_per_node: Optional[int] = None) -> dict[str, Path]:
    """Write ``basename``.prv/.pcf/.row; returns the paths written.

    *end_time* is the simulated duration covered (usually
    ``runtime.elapsed``).
    """
    if end_time <= 0:
        raise ReproError("end_time must be positive")
    basename = Path(basename)
    pairs = _threads(trace)
    appranks = sorted({a for a, _n in pairs})
    nodes = sorted({n for _a, n in pairs})
    threads_of: dict[int, list[int]] = {a: [] for a in appranks}
    for a, n in pairs:
        threads_of[a].append(n)

    def ns(t: float) -> int:
        return int(round(t * 1e9))

    duration = ns(end_time)
    # Header: ftime:nNodes(cpus):nAppl:appl(tasks(threads:node))
    node_cpus = ",".join(["1"] * len(nodes))
    task_list = ",".join(
        f"{len(threads_of[a])}:{nodes.index(threads_of[a][0]) + 1}"
        for a in appranks)
    header = (f"#Paraver (01/01/2022 at 00:00):{duration}_ns:"
              f"{len(nodes)}({node_cpus}):1:{len(appranks)}({task_list})")

    records: list[tuple[int, str]] = []
    for a, n in pairs:
        task_no = appranks.index(a) + 1
        thread_no = threads_of[a].index(n) + 1
        cpu_no = nodes.index(n) + 1
        ident = f"{cpu_no}:1:{task_no}:{thread_no}"
        busy = trace.series("busy", n, a)
        points = busy.change_points()
        # state records: Running while busy > 0
        for i, (t, value) in enumerate(points):
            t_end = points[i + 1][0] if i + 1 < len(points) else end_time
            state = 1 if value > 0 else 0
            if ns(t_end) > ns(t):
                records.append(
                    (ns(t), f"1:{ident}:{ns(t)}:{ns(t_end)}:{state}"))
            records.append(
                (ns(t), f"2:{ident}:{ns(t)}:{BUSY_EVENT_TYPE}:{int(value)}"))
        if trace.has_series("owned", n, a):
            for t, value in trace.series("owned", n, a).change_points():
                records.append(
                    (ns(t),
                     f"2:{ident}:{ns(t)}:{OWNED_EVENT_TYPE}:{int(value)}"))

    def thread_ident(apprank: int, node: int) -> str:
        """Paraver object for a point event (best-effort placement)."""
        if (apprank, node) in pairs:
            task_no = appranks.index(apprank) + 1
            thread_no = threads_of[apprank].index(node) + 1
            return f"{nodes.index(node) + 1}:1:{task_no}:{thread_no}"
        if apprank in threads_of:
            home = threads_of[apprank][0]
            return (f"{nodes.index(home) + 1}:1:"
                    f"{appranks.index(apprank) + 1}:1")
        return "1:1:1:1"

    kinds = sorted({i.name for i in trace.bus.instants})
    kind_values = {kind: i + 1 for i, kind in enumerate(kinds)}
    for instant in trace.bus.instants:
        ident = thread_ident(instant.args.get("apprank", -1),
                             instant.track.node)
        records.append(
            (ns(instant.time),
             f"2:{ident}:{ns(instant.time)}:{POINT_EVENT_TYPE}:"
             f"{kind_values[instant.name]}"))
    records.sort(key=lambda r: r[0])

    prv = basename.with_suffix(".prv")
    prv.write_text(header + "\n" + "\n".join(line for _t, line in records)
                   + "\n")
    pcf = basename.with_suffix(".pcf")
    pcf_text = _PCF_TEMPLATE.format(busy=BUSY_EVENT_TYPE,
                                    owned=OWNED_EVENT_TYPE)
    if kinds:
        value_lines = "\n".join(f"{v}   {kind}"
                                for kind, v in kind_values.items())
        pcf_text += _PCF_POINT_TEMPLATE.format(point=POINT_EVENT_TYPE,
                                               values=value_lines)
    pcf.write_text(pcf_text)
    row = basename.with_suffix(".row")
    row_lines = [f"LEVEL THREAD SIZE {len(pairs)}"]
    row_lines += [f"apprank{a}@node{n}" for a, n in pairs]
    row.write_text("\n".join(row_lines) + "\n")
    return {"prv": prv, "pcf": pcf, "row": row}
