"""Structured trace export.

The paper's traces are Paraver timelines; this module dumps a
:class:`~repro.metrics.trace.TraceRecorder` into portable formats for
external plotting tools:

* :func:`trace_to_records` — flat (metric, node, apprank, time, value)
  change-point records;
* :func:`trace_to_csv` — the same as CSV text;
* :func:`trace_to_json` — a JSON document with per-series change points;
* :func:`resampled_matrix` — a dense (series × time-grid) numpy matrix
  plus labels, ready for ``matplotlib.pyplot.imshow``-style plotting.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

import numpy as np

from ..errors import ReproError
from .trace import TraceRecorder

__all__ = ["trace_to_records", "trace_to_csv", "trace_to_json",
           "resampled_matrix"]


def _series_keys(trace: TraceRecorder, metrics: Iterable[str]
                 ) -> list[tuple[str, int, int]]:
    keys = []
    for metric in metrics:
        for node in trace.nodes(metric):
            for apprank in trace.appranks_on_node(metric, node):
                keys.append((metric, node, apprank))
    if not keys:
        raise ReproError("trace holds none of the requested metrics")
    return keys


def trace_to_records(trace: TraceRecorder,
                     metrics: Iterable[str] = ("busy", "owned")
                     ) -> list[tuple[str, int, int, float, float]]:
    """Flat change-point records sorted by (metric, node, apprank, time)."""
    records = []
    for metric, node, apprank in _series_keys(trace, metrics):
        for t, value in trace.series(metric, node, apprank).change_points():
            records.append((metric, node, apprank, t, value))
    return records


def trace_to_csv(trace: TraceRecorder,
                 metrics: Iterable[str] = ("busy", "owned")) -> str:
    """CSV text: ``metric,node,apprank,time,value`` per change point."""
    lines = ["metric,node,apprank,time,value"]
    for metric, node, apprank, t, value in trace_to_records(trace, metrics):
        lines.append(f"{metric},{node},{apprank},{t},{value}")
    return "\n".join(lines) + "\n"


def trace_to_json(trace: TraceRecorder,
                  metrics: Iterable[str] = ("busy", "owned")) -> str:
    """JSON document: one entry per series with its change points."""
    series = []
    for metric, node, apprank in _series_keys(trace, metrics):
        points = trace.series(metric, node, apprank).change_points()
        series.append({
            "metric": metric,
            "node": node,
            "apprank": apprank,
            "times": [t for t, _v in points],
            "values": [v for _t, v in points],
        })
    return json.dumps({"series": series}, indent=1)


def resampled_matrix(trace: TraceRecorder, metric: str,
                     times: Sequence[float]
                     ) -> tuple[np.ndarray, list[str]]:
    """Dense matrix of one metric: rows = (node, apprank), columns = times.

    Returns ``(matrix, labels)`` where labels[i] names row i.
    """
    keys = _series_keys(trace, [metric])
    matrix = np.empty((len(keys), len(times)))
    labels = []
    for i, (m, node, apprank) in enumerate(keys):
        matrix[i] = trace.series(m, node, apprank).resample(times)
        labels.append(f"node{node}/apprank{apprank}")
    return matrix, labels
