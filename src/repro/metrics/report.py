"""ASCII rendering of traces and result summaries.

The paper's trace figures (5, 9) are timelines of busy/owned cores per
(node, apprank). :func:`render_trace` draws the same picture in text:
one row per (node, apprank) series, one column per time bucket, with the
glyph scaled to the bucket's average value — enough to eyeball LeWI
borrowing and DROM convergence in a terminal.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import ReproError
from .timeline import StepSeries
from .trace import TraceRecorder

__all__ = ["render_series", "render_trace", "GLYPHS"]

#: glyph ramp from idle to full
GLYPHS = " .:-=+*#%@"


def _row(series: StepSeries, start: float, end: float, width: int,
         peak: float) -> str:
    edges = np.linspace(start, end, width + 1)
    cells = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        value = series.mean(lo, hi)
        level = 0 if peak <= 0 else min(len(GLYPHS) - 1,
                                        int(round(value / peak
                                                  * (len(GLYPHS) - 1))))
        cells.append(GLYPHS[level])
    return "".join(cells)


def render_series(series: StepSeries, start: float, end: float,
                  width: int = 80, peak: Optional[float] = None,
                  label: str = "") -> str:
    """One labelled timeline row."""
    if end <= start:
        raise ReproError("empty render window")
    if peak is None:
        grid = np.linspace(start, end, max(width * 2, 16))
        peak = float(series.resample(grid).max()) or 1.0
    return f"{label:<18s}|{_row(series, start, end, width, peak)}|"


def render_trace(trace: TraceRecorder, metric: str, start: float, end: float,
                 width: int = 80, peak: Optional[float] = None,
                 nodes: Optional[Sequence[int]] = None) -> str:
    """Paper-style timeline block: one row per (node, apprank) series.

    *peak* defaults to the max value across all rendered series so rows are
    comparable (for 'busy'/'owned', pass the node core count).
    """
    node_list = list(nodes) if nodes is not None else trace.nodes(metric)
    if not node_list:
        raise ReproError(f"no '{metric}' series recorded")
    rows: list[tuple[str, StepSeries]] = []
    for node in node_list:
        for apprank in trace.appranks_on_node(metric, node):
            rows.append((f"node{node} apprank{apprank}",
                         trace.series(metric, node, apprank)))
    if peak is None:
        grid = np.linspace(start, end, max(width * 2, 16))
        peak = max(float(s.resample(grid).max()) for _l, s in rows) or 1.0
    lines = [f"-- {metric} (t = {start:.3f} .. {end:.3f} s, "
             f"peak = {peak:g}) --"]
    previous_node = None
    for label, series in rows:
        node_tag = label.split()[0]
        if previous_node is not None and node_tag != previous_node:
            lines.append("")
        previous_node = node_tag
        lines.append(f"{label:<18s}|{_row(series, start, end, width, peak)}|")
    return "\n".join(lines)
