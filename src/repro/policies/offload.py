"""Built-in offload policies.

``tentative`` is the paper's §5.5 rule, extracted verbatim from the seed
scheduler (the default — parity-tested bit-identical). ``locality`` and
``work-sharing`` are the two ablation variants the paper could not test:
one weights the choice by bytes resident per node's
:class:`~repro.nanos.locality.DataDirectory`, the other is a bounded
work-sharing baseline that only offloads once the home node saturates.
"""

from __future__ import annotations

from typing import Sequence

from .base import KEEP, QUEUE, Decision, OffloadPolicy, SchedulerView, TaskView

__all__ = ["TentativeImmediateOffload", "LocalityWeightedOffload",
           "BoundedWorkSharingOffload"]


class TentativeImmediateOffload(OffloadPolicy):
    """The paper's §5.5 tentative-immediate rule (the default).

    Walk the adjacent nodes best-locality-first (home wins ties) and take
    the first live node holding fewer than ``tasks_per_core`` unfinished
    tasks per *owned* core; otherwise spill. Queued tasks are retried in
    FIFO order (the inherited :meth:`~OffloadPolicy.drain_order`).
    """

    name = "tentative"

    def choose_worker(self, task: TaskView, view: SchedulerView) -> Decision:
        """First under-threshold node in §5.5 locality order, else QUEUE."""
        for node_id in view.by_locality():
            node = view.node(node_id)
            if not node.alive:
                continue        # crashed worker not yet unregistered
            if node.load_ratio < view.tasks_per_core:
                return KEEP if node_id == view.home_node else node_id
        return QUEUE


class LocalityWeightedOffload(OffloadPolicy):
    """Data-gravity variant: weight §5.5 by bytes resident per node.

    Among live under-threshold nodes, pick the one maximising
    ``bytes_present / (1 + active_tasks)`` — resident input data
    discounted by the work already bound there — so a node holding the
    task's inputs attracts it even when a closer-to-idle node exists,
    trading queueing delay for transfer avoidance. Ties fall back to the
    §5.5 home-first order. The spill queue drains biggest-input tasks
    first: they gain the most from placement freedom.
    """

    name = "locality"

    def choose_worker(self, task: TaskView, view: SchedulerView) -> Decision:
        """Best data-per-pending-task node under the threshold, else QUEUE."""
        best_id: int | None = None
        best_key: tuple[float, bool, int] | None = None
        for node in view.nodes:
            if not node.alive or node.load_ratio >= view.tasks_per_core:
                continue
            key = (-(node.bytes_present / (1.0 + node.active_tasks)),
                   node.node_id != view.home_node, node.node_id)
            if best_key is None or key < best_key:
                best_id, best_key = node.node_id, key
        if best_id is None:
            return QUEUE
        return KEEP if best_id == view.home_node else best_id

    def drain_order(self, queue: Sequence[TaskView],
                    view: SchedulerView) -> Sequence[int]:
        """Retry spilled tasks biggest input footprint first (stable)."""
        return sorted(range(len(queue)),
                      key=lambda i: (-queue[i].input_bytes, i))


class BoundedWorkSharingOffload(OffloadPolicy):
    """Bounded work-sharing baseline: share only when home saturates.

    Keep every task home while the home node is under the §5.5
    threshold; once it saturates, push to the least-loaded live adjacent
    node still under the threshold (lowest load ratio, node id as the
    tie-break), ignoring data locality entirely; otherwise spill. This
    is classic receiver-blind work sharing bounded by the same
    two-per-owned-core limit, isolating how much of the paper's win
    comes from locality ordering versus from offloading per se.
    """

    name = "work-sharing"

    def choose_worker(self, task: TaskView, view: SchedulerView) -> Decision:
        """KEEP under home threshold; else least-loaded helper; else QUEUE."""
        home = view.node(view.home_node)
        if home.alive and home.load_ratio < view.tasks_per_core:
            return KEEP
        best_id: int | None = None
        best_key: tuple[float, int] | None = None
        for node in view.nodes:
            if (node.node_id == view.home_node or not node.alive
                    or node.load_ratio >= view.tasks_per_core):
                continue
            key = (node.load_ratio, node.node_id)
            if best_key is None or key < best_key:
                best_id, best_key = node.node_id, key
        return QUEUE if best_id is None else best_id
