"""LeWI lend / reclaim decision strategies (paper §5.3).

The :class:`~repro.dlb.shmem.NodeArbiter` keeps the core state machine,
counters and DLB invariants; *who lends how many cores* and *in which
order candidates are offered a released core* are decided here. The
arbiter enforces the hard rules regardless of policy: non-owners only
ever receive a core when LeWI is enabled, candidates without ready work
are skipped, and the lend/borrow/reclaim counters are classified by the
mechanism (owner taking back a borrower's core = reclaim, anything else
= borrow), so a policy can reorder decisions but not corrupt accounting.

``eager`` + ``owner-first`` reproduce the seed arbiter bit-identically
(the parity-tested defaults).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, ClassVar, Hashable, Optional, Sequence

__all__ = ["LendView", "CandidateView", "CoreGrantView", "LendPolicy",
           "ReclaimPolicy", "EagerLend", "HoardLend", "ReserveOneLend",
           "OwnerFirstReclaim", "ReleaserFirstReclaim"]

#: Worker identity as the arbiter knows it (``(apprank, node)`` tuples in
#: the runtime; any sortable hashable in tests).
WorkerKey = Hashable


@dataclass(frozen=True)
class LendView:
    """Snapshot for one voluntary-lend decision (worker ran dry)."""

    node_id: int
    #: the worker offering to lend
    worker_key: WorkerKey
    #: its currently idle, owned, not-yet-lent cores
    idle_owned_cores: int
    #: its own ready backlog (normally 0 here — it just ran dry)
    backlog: int


@dataclass(frozen=True)
class CandidateView:
    """One registered worker as seen when a core is released."""

    key: WorkerKey
    #: has a runnable task or parked body awaiting a core
    has_ready: bool
    #: ready backlog size (borrow-prioritisation signal)
    backlog: int
    #: owns the released core
    is_owner: bool
    #: is the worker whose task just finished on the core
    is_releaser: bool


@dataclass(frozen=True)
class CoreGrantView:
    """Snapshot for one released-core grant decision."""

    node_id: int
    core_index: int
    #: the core's owner key, or None if unowned/retired
    owner: Optional[WorkerKey]
    #: the worker releasing the core
    releaser: WorkerKey
    #: every registered worker on the node, in registration order
    candidates: tuple[CandidateView, ...]

    def owner_candidate(self) -> Optional[CandidateView]:
        """The owner's candidate entry, or None if the owner is gone."""
        for candidate in self.candidates:
            if candidate.is_owner:
                return candidate
        return None


class LendPolicy(ABC):
    """When and how many idle cores a worker lends."""

    #: registry key (``RuntimeConfig.lend_policy`` / ``--lend-policy``)
    name: ClassVar[str] = ""

    @abstractmethod
    def lend_count(self, view: LendView) -> int:
        """How many of ``view.idle_owned_cores`` to lend right now
        (clamped by the mechanism to ``[0, idle_owned_cores]``)."""

    @abstractmethod
    def lend_released(self, view: CoreGrantView) -> bool:
        """Whether a released core nobody could start on should be
        marked lent (only honoured when LeWI is enabled)."""


class ReclaimPolicy(ABC):
    """In which order a released core is offered to workers."""

    #: registry key (``RuntimeConfig.reclaim_policy``)
    name: ClassVar[str] = ""

    @abstractmethod
    def grant_order(self, view: CoreGrantView) -> Sequence[WorkerKey]:
        """Candidate worker keys, most-preferred first; the mechanism
        tries each in turn (skipping ineligible ones) and stops at the
        first that starts a task. Duplicates are ignored."""


def _others_by_backlog(view: CoreGrantView) -> list[WorkerKey]:
    """Non-owner non-releaser candidates, busiest backlog first (the seed
    arbiter's deterministic ``(-backlog, key)`` tie-break)."""
    others = [c for c in view.candidates
              if not c.is_owner and not c.is_releaser]
    def sort_key(candidate: CandidateView) -> tuple[int, Any]:
        return (-candidate.backlog, candidate.key)

    others.sort(key=sort_key)
    return [c.key for c in others]


class EagerLend(LendPolicy):
    """The paper's LeWI behaviour (the default): lend everything idle
    immediately, and lend a released core whenever its owner has nothing
    ready."""

    name = "eager"

    def lend_count(self, view: LendView) -> int:
        """Lend every idle owned core."""
        return view.idle_owned_cores

    def lend_released(self, view: CoreGrantView) -> bool:
        """Lend unless the owner (still registered) has ready work."""
        owner = view.owner_candidate()
        return owner is None or not owner.has_ready


class HoardLend(LendPolicy):
    """Never lend voluntarily — an ablation baseline isolating the value
    of LeWI's lending half while reclaim stays active."""

    name = "hoard"

    def lend_count(self, view: LendView) -> int:
        """Lend nothing."""
        return 0

    def lend_released(self, view: CoreGrantView) -> bool:
        """Keep released cores unlent."""
        return False


class ReserveOneLend(LendPolicy):
    """Lend all idle cores but one, keeping a warm core for the owner's
    next task (trades utilisation for reclaim latency)."""

    name = "reserve-one"

    def lend_count(self, view: LendView) -> int:
        """Lend all but one idle owned core."""
        return max(0, view.idle_owned_cores - 1)

    def lend_released(self, view: CoreGrantView) -> bool:
        """Same tail rule as :class:`EagerLend`."""
        owner = view.owner_candidate()
        return owner is None or not owner.has_ready


class OwnerFirstReclaim(ReclaimPolicy):
    """The seed arbiter's order (the default): owner first (the LeWI
    reclaim path), then the releasing worker, then other workers by
    descending backlog."""

    name = "owner-first"

    def grant_order(self, view: CoreGrantView) -> Sequence[WorkerKey]:
        """owner → releaser → others by ``(-backlog, key)``."""
        order: list[WorkerKey] = []
        if view.owner is not None:
            order.append(view.owner)
        if view.releaser != view.owner:
            order.append(view.releaser)
        order.extend(_others_by_backlog(view))
        return order


class ReleaserFirstReclaim(ReclaimPolicy):
    """Work-conserving variant: the releasing worker keeps its warm core
    when it still has work, deferring the owner's reclaim by one task —
    fewer reclaim round-trips at the cost of slower ownership
    convergence."""

    name = "releaser-first"

    def grant_order(self, view: CoreGrantView) -> Sequence[WorkerKey]:
        """releaser → owner → others by ``(-backlog, key)``."""
        order: list[WorkerKey] = [view.releaser]
        if view.owner is not None and view.owner != view.releaser:
            order.append(view.owner)
        order.extend(_others_by_backlog(view))
        return order
