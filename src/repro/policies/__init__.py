"""The policy kernel: scheduling / LeWI / DROM decisions as pure strategies.

The paper's transparent load balancing composes independent decision
layers (§5.5 offload scheduling, §5.3 LeWI arbitration, §5.4 DROM
reallocation). This package extracts each decision from its mechanism
into a pure strategy behind an immutable snapshot view, keyed by name in
four registries:

* :data:`OFFLOAD_POLICIES` — where a ready task runs
  (:class:`OffloadPolicy`; ``RuntimeConfig.offload_policy``/``--policy``)
* :data:`LEND_POLICIES` — when idle cores are lent
  (:class:`LendPolicy`; ``RuntimeConfig.lend_policy``/``--lend-policy``)
* :data:`RECLAIM_POLICIES` — who a released core is offered to
  (:class:`ReclaimPolicy`; ``RuntimeConfig.reclaim_policy``)
* :data:`REALLOCATION_POLICIES` — DROM ownership targets
  (:class:`ClusterReallocationPolicy`/:class:`NodeReallocationPolicy`;
  ``RuntimeConfig.policy``)

The registered defaults (``tentative``, ``eager``, ``owner-first``,
``global``/``local``) reproduce the seed behaviour bit-identically —
see ``tests/policies/test_golden_parity.py`` and DESIGN.md §7 for the
purity contract and how to register a new policy.
"""

from __future__ import annotations

from typing import Any

from .base import (KEEP, QUEUE, Decision, NodeView, OffloadPolicy,
                   SchedulerView, TaskView)
from .lewi import (CandidateView, CoreGrantView, EagerLend, HoardLend,
                   LendPolicy, LendView, OwnerFirstReclaim, ReclaimPolicy,
                   ReleaserFirstReclaim, ReserveOneLend)
from .offload import (BoundedWorkSharingOffload, LocalityWeightedOffload,
                      TentativeImmediateOffload)
from .reallocation import (AllocationView, ClusterReallocationPolicy,
                           GavelMaxThroughputReallocation,
                           GlobalLpReallocation, LocalProportionalReallocation,
                           NodeAllocationView, NodeReallocationPolicy)
from .registry import PolicyRegistry, register_entry_points

__all__ = [
    "KEEP",
    "QUEUE",
    "Decision",
    "TaskView",
    "NodeView",
    "SchedulerView",
    "OffloadPolicy",
    "TentativeImmediateOffload",
    "LocalityWeightedOffload",
    "BoundedWorkSharingOffload",
    "LendView",
    "CandidateView",
    "CoreGrantView",
    "LendPolicy",
    "ReclaimPolicy",
    "EagerLend",
    "HoardLend",
    "ReserveOneLend",
    "OwnerFirstReclaim",
    "ReleaserFirstReclaim",
    "AllocationView",
    "NodeAllocationView",
    "ClusterReallocationPolicy",
    "NodeReallocationPolicy",
    "GlobalLpReallocation",
    "LocalProportionalReallocation",
    "GavelMaxThroughputReallocation",
    "PolicyRegistry",
    "register_entry_points",
    "OFFLOAD_POLICIES",
    "LEND_POLICIES",
    "RECLAIM_POLICIES",
    "REALLOCATION_POLICIES",
    "available_policies",
    "load_entry_point_policies",
]

#: Registry of :class:`OffloadPolicy` subclasses (``--policy``).
OFFLOAD_POLICIES: PolicyRegistry[OffloadPolicy] = PolicyRegistry("offload")
#: Registry of :class:`LendPolicy` subclasses (``--lend-policy``).
LEND_POLICIES: PolicyRegistry[LendPolicy] = PolicyRegistry("lend")
#: Registry of :class:`ReclaimPolicy` subclasses.
RECLAIM_POLICIES: PolicyRegistry[ReclaimPolicy] = PolicyRegistry("reclaim")
#: Registry of reallocation strategies (``RuntimeConfig.policy``); holds
#: both cluster-wide and per-node strategies — the runtime dispatches on
#: the ABC the created instance derives from.
REALLOCATION_POLICIES: PolicyRegistry[object] = PolicyRegistry("reallocation")

OFFLOAD_POLICIES.register(TentativeImmediateOffload)
OFFLOAD_POLICIES.register(LocalityWeightedOffload)
OFFLOAD_POLICIES.register(BoundedWorkSharingOffload)
LEND_POLICIES.register(EagerLend)
LEND_POLICIES.register(HoardLend)
LEND_POLICIES.register(ReserveOneLend)
RECLAIM_POLICIES.register(OwnerFirstReclaim)
RECLAIM_POLICIES.register(ReleaserFirstReclaim)
REALLOCATION_POLICIES.register(GlobalLpReallocation)
REALLOCATION_POLICIES.register(LocalProportionalReallocation)
REALLOCATION_POLICIES.register(GavelMaxThroughputReallocation)

#: every registry by kind, for listings and entry-point loading
_REGISTRIES: dict[str, PolicyRegistry[Any]] = {
    "offload": OFFLOAD_POLICIES,
    "lend": LEND_POLICIES,
    "reclaim": RECLAIM_POLICIES,
    "reallocation": REALLOCATION_POLICIES,
}


def available_policies() -> dict[str, tuple[str, ...]]:
    """Registered policy names per kind (what ``repro policies`` prints)."""
    return {kind: registry.names()
            for kind, registry in _REGISTRIES.items()}


def load_entry_point_policies() -> int:
    """Register third-party policies from ``repro.<kind>_policies`` entry
    points across all four registries; returns how many were added."""
    return sum(register_entry_points(registry, f"repro.{kind}_policies")
               for kind, registry in _REGISTRIES.items())
