"""DROM reallocation strategies (paper §5.4).

The periodic tick machinery — meter reading, EMA smoothing, solver-cost
latency, fallback to the last feasible allocation, applying through DROM
— stays in :mod:`repro.balance`. What allocation a tick *requests* is
decided here, from immutable snapshots of the measured work:

* :class:`ClusterReallocationPolicy` sees the whole cluster at once
  (driven by :class:`~repro.balance.global_policy.GlobalLpPolicy`);
* :class:`NodeReallocationPolicy` sees one node at a time (driven by
  :class:`~repro.balance.local_policy.LocalConvergencePolicy`).

``global`` and ``local`` reproduce §5.4.2 / §5.4.1 bit-identically (the
parity-tested defaults). The solver imports are deliberately lazy so
this module stays import-light (stdlib only at module level).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, ClassVar, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.bipartite import BipartiteGraph

__all__ = ["AllocationView", "NodeAllocationView",
           "ClusterReallocationPolicy", "NodeReallocationPolicy",
           "GlobalLpReallocation", "LocalProportionalReallocation"]

#: Worker identity: ``(apprank, node)`` edge tuples in the runtime (Any
#: rather than a tuple alias so allocation dicts returned by concrete
#: solvers remain assignable under dict key invariance).
WorkerKey = Any


@dataclass(frozen=True)
class AllocationView:
    """Cluster-wide inputs to one reallocation decision (read-only copies)."""

    #: smoothed measured work per apprank (busy-core seconds this period)
    work: Mapping[int, float]
    #: cores per node
    node_cores: Mapping[int, int]
    #: relative speed per node
    node_speed: Mapping[int, float]
    #: §5.4.2 home-core incentive (remote work counts ``1 + penalty``)
    offload_penalty: float
    #: live ``(apprank, node)`` worker edges, sorted — grown helpers and
    #: crashed workers are reflected here, not in the static graph
    edges: tuple[tuple[int, int], ...]
    #: home node per apprank
    home_of: Mapping[int, int]
    #: nodes in the static graph
    num_nodes: int
    #: §5.4.2 partitioned-solve group size (None = whole-cluster solve)
    partition_nodes: Optional[int]
    #: nodes that failed mid-run
    dead_nodes: frozenset[int]
    #: the static bipartite topology (treat as immutable)
    graph: "BipartiteGraph"


@dataclass(frozen=True)
class NodeAllocationView:
    """One node's inputs to a local reallocation decision."""

    node_id: int
    #: cores on the node
    cores: int
    #: smoothed average busy cores per worker key on this node
    averages: Mapping[Any, float]


class ClusterReallocationPolicy(ABC):
    """Cluster-wide ownership strategy (global-policy driver)."""

    #: registry key (``RuntimeConfig.policy`` / ``--realloc-policy``)
    name: ClassVar[str] = ""

    @abstractmethod
    def allocate(self, view: AllocationView
                 ) -> dict[int, dict[WorkerKey, int]]:
        """Requested owned-core counts: node id → worker key → cores.

        May raise :class:`~repro.errors.AllocationError` when infeasible;
        the mechanism falls back to the last feasible allocation.
        """


class NodeReallocationPolicy(ABC):
    """Per-node ownership strategy (local-policy driver)."""

    #: registry key (``RuntimeConfig.policy``)
    name: ClassVar[str] = ""

    @abstractmethod
    def allocate_node(self, view: NodeAllocationView) -> dict[Any, int]:
        """Requested owned-core counts for one node's workers."""


class GlobalLpReallocation(ClusterReallocationPolicy):
    """The paper's §5.4.2 Eq. 1 linear program (the ``"global"`` default).

    Solves over the live worker edges so dynamically grown helpers join
    the problem immediately; above ``partition_nodes`` healthy nodes it
    switches to the contiguous-group partitioned solve the paper
    recommends at scale.
    """

    name = "global"

    def allocate(self, view: AllocationView
                 ) -> dict[int, dict[WorkerKey, int]]:
        """One Eq. 1 solve (partitioned when the cluster is large)."""
        from ..balance.global_policy import (solve_edge_allocation,
                                             solve_partitioned_allocation)
        if (view.partition_nodes is not None
                and view.num_nodes > view.partition_nodes
                and not view.dead_nodes):
            return solve_partitioned_allocation(
                view.graph, dict(view.work), dict(view.node_cores),
                dict(view.node_speed), view.offload_penalty,
                group_nodes=view.partition_nodes)
        return solve_edge_allocation(
            list(view.edges), dict(view.home_of), dict(view.work),
            dict(view.node_cores), dict(view.node_speed),
            view.offload_penalty)


class LocalProportionalReallocation(NodeReallocationPolicy):
    """The paper's §5.4.1 per-node proportional split (the ``"local"``
    default): each worker gets cores proportional to its smoothed busy
    average, with the one-core DLB floor."""

    name = "local"

    def allocate_node(self, view: NodeAllocationView) -> dict[Any, int]:
        """Proportional largest-remainder split with a one-core floor."""
        from ..balance.rounding import proportional_allocation
        return proportional_allocation(dict(view.averages), view.cores,
                                       minimum=1)
