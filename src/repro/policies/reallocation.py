"""DROM reallocation strategies (paper §5.4).

The periodic tick machinery — meter reading, EMA smoothing, solver-cost
latency, fallback to the last feasible allocation, applying through DROM
— stays in :mod:`repro.balance`. What allocation a tick *requests* is
decided here, from immutable snapshots of the measured work:

* :class:`ClusterReallocationPolicy` sees the whole cluster at once
  (driven by :class:`~repro.balance.global_policy.GlobalLpPolicy`);
* :class:`NodeReallocationPolicy` sees one node at a time (driven by
  :class:`~repro.balance.local_policy.LocalConvergencePolicy`).

``global`` and ``local`` reproduce §5.4.2 / §5.4.1 bit-identically (the
parity-tested defaults). ``gavel`` is the Gavel-style max-sum-throughput
strategy used by the multi-job layer (:mod:`repro.jobs`), where the
"appranks" in the view are whole jobs and the optional
:attr:`AllocationView.throughput` curves carry each job's modelled
throughput at every core count. The solver imports are deliberately
lazy so this module stays import-light (stdlib only at module level).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, ClassVar, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.bipartite import BipartiteGraph

__all__ = ["AllocationView", "NodeAllocationView",
           "ClusterReallocationPolicy", "NodeReallocationPolicy",
           "GlobalLpReallocation", "LocalProportionalReallocation",
           "GavelMaxThroughputReallocation"]

#: Worker identity: ``(apprank, node)`` edge tuples in the runtime (Any
#: rather than a tuple alias so allocation dicts returned by concrete
#: solvers remain assignable under dict key invariance).
WorkerKey = Any


@dataclass(frozen=True)
class AllocationView:
    """Cluster-wide inputs to one reallocation decision (read-only copies)."""

    #: smoothed measured work per apprank (busy-core seconds this period)
    work: Mapping[int, float]
    #: cores per node
    node_cores: Mapping[int, int]
    #: relative speed per node
    node_speed: Mapping[int, float]
    #: §5.4.2 home-core incentive (remote work counts ``1 + penalty``)
    offload_penalty: float
    #: live ``(apprank, node)`` worker edges, sorted — grown helpers and
    #: crashed workers are reflected here, not in the static graph
    edges: tuple[tuple[int, int], ...]
    #: home node per apprank
    home_of: Mapping[int, int]
    #: nodes in the static graph
    num_nodes: int
    #: §5.4.2 partitioned-solve group size (None = whole-cluster solve)
    partition_nodes: Optional[int]
    #: nodes that failed mid-run
    dead_nodes: frozenset[int]
    #: the static bipartite topology (treat as immutable)
    graph: "BipartiteGraph"
    #: optional per-apprank throughput-vs-cores curves: entry ``c - 1``
    #: is the modelled throughput at ``c`` cores. Supplied by the
    #: multi-job layer (where appranks are whole jobs); ``None`` on the
    #: single-application path, where curve-driven policies synthesise
    #: concave curves from :attr:`work` instead.
    throughput: Optional[Mapping[int, tuple[float, ...]]] = None


@dataclass(frozen=True)
class NodeAllocationView:
    """One node's inputs to a local reallocation decision."""

    node_id: int
    #: cores on the node
    cores: int
    #: smoothed average busy cores per worker key on this node
    averages: Mapping[Any, float]


class ClusterReallocationPolicy(ABC):
    """Cluster-wide ownership strategy (global-policy driver)."""

    #: registry key (``RuntimeConfig.policy`` / ``--realloc-policy``)
    name: ClassVar[str] = ""

    @abstractmethod
    def allocate(self, view: AllocationView
                 ) -> dict[int, dict[WorkerKey, int]]:
        """Requested owned-core counts: node id → worker key → cores.

        May raise :class:`~repro.errors.AllocationError` when infeasible;
        the mechanism falls back to the last feasible allocation.
        """


class NodeReallocationPolicy(ABC):
    """Per-node ownership strategy (local-policy driver)."""

    #: registry key (``RuntimeConfig.policy``)
    name: ClassVar[str] = ""

    @abstractmethod
    def allocate_node(self, view: NodeAllocationView) -> dict[Any, int]:
        """Requested owned-core counts for one node's workers."""


class GlobalLpReallocation(ClusterReallocationPolicy):
    """The paper's §5.4.2 Eq. 1 linear program (the ``"global"`` default).

    Solves over the live worker edges so dynamically grown helpers join
    the problem immediately; above ``partition_nodes`` healthy nodes it
    switches to the contiguous-group partitioned solve the paper
    recommends at scale.
    """

    name = "global"

    def allocate(self, view: AllocationView
                 ) -> dict[int, dict[WorkerKey, int]]:
        """One Eq. 1 solve (partitioned when the cluster is large)."""
        from ..balance.global_policy import (solve_edge_allocation,
                                             solve_partitioned_allocation)
        if (view.partition_nodes is not None
                and view.num_nodes > view.partition_nodes
                and not view.dead_nodes):
            return solve_partitioned_allocation(
                view.graph, dict(view.work), dict(view.node_cores),
                dict(view.node_speed), view.offload_penalty,
                group_nodes=view.partition_nodes)
        return solve_edge_allocation(
            list(view.edges), dict(view.home_of), dict(view.work),
            dict(view.node_cores), dict(view.node_speed),
            view.offload_penalty)


class LocalProportionalReallocation(NodeReallocationPolicy):
    """The paper's §5.4.1 per-node proportional split (the ``"local"``
    default): each worker gets cores proportional to its smoothed busy
    average, with the one-core DLB floor."""

    name = "local"

    def allocate_node(self, view: NodeAllocationView) -> dict[Any, int]:
        """Proportional largest-remainder split with a one-core floor."""
        from ..balance.rounding import proportional_allocation
        return proportional_allocation(dict(view.averages), view.cores,
                                       minimum=1)


class GavelMaxThroughputReallocation(ClusterReallocationPolicy):
    """Gavel-style max-sum-throughput allocation (``"gavel"``).

    Greedy marginal-gain ascent over per-apprank throughput-vs-cores
    curves: after the one-core DLB floor, each remaining core goes to the
    apprank whose curve gains the most from it. For concave curves (true
    of real speedup curves, and of the synthesised ``min(c, cap)``
    fallback) the greedy solution *is* the max-sum-throughput optimum,
    and it is monotone: adding an apprank never increases another
    apprank's allocation.

    Ties are broken by accumulated *deficit* — the running difference
    between an apprank's continuous work-fair share and the integer
    cores it was actually granted (Gavel's rounding trick) — then by
    apprank id, so repeated ties rotate toward the apprank that has been
    shorted the longest. The deficit state evolves deterministically
    from the sequence of views, so same-seed runs stay bit-identical.
    """

    name = "gavel"

    def __init__(self) -> None:
        #: accumulated continuous-share minus granted-cores per apprank
        self._deficits: dict[int, float] = {}

    # -- curve handling ----------------------------------------------------

    @staticmethod
    def _synthesise_curve(work: float, work_sum: float, total: int
                          ) -> tuple[float, ...]:
        """A concave ``min(c, cap)`` curve with a work-proportional cap."""
        if work_sum > 0.0:
            cap = max(1, round(total * max(0.0, work) / work_sum))
        else:
            cap = total
        return tuple(float(min(c, cap)) for c in range(1, total + 1))

    def _curves(self, view: AllocationView, appranks: list[int],
                total: int) -> dict[int, tuple[float, ...]]:
        given = view.throughput or {}
        work_sum = sum(max(0.0, float(view.work.get(a, 0.0)))
                       for a in appranks)
        curves: dict[int, tuple[float, ...]] = {}
        for apprank in appranks:
            curve = given.get(apprank)
            if curve:
                curves[apprank] = tuple(float(v) for v in curve)
            else:
                curves[apprank] = self._synthesise_curve(
                    float(view.work.get(apprank, 0.0)), work_sum, total)
        return curves

    # -- the greedy core ---------------------------------------------------

    def _greedy(self, appranks: list[int],
                curves: Mapping[int, tuple[float, ...]],
                total: int) -> dict[int, int]:
        counts = {a: 1 for a in appranks}
        budget = total - len(appranks)
        if budget < 0:
            from ..errors import AllocationError
            raise AllocationError(
                f"cannot give {len(appranks)} jobs >= 1 core from {total}")

        def marginal(apprank: int) -> float:
            held = counts[apprank]
            curve = curves[apprank]
            if held >= len(curve):
                return 0.0
            return curve[held] - curve[held - 1]

        for _ in range(budget):
            best: Optional[int] = None
            best_key: Optional[tuple[float, float, int]] = None
            for apprank in appranks:
                gain = marginal(apprank)
                if gain <= 1e-12:
                    continue
                key = (gain, self._deficits.get(apprank, 0.0), -apprank)
                if best_key is None or key > best_key:
                    best, best_key = apprank, key
            if best is None:
                break
            counts[best] += 1
        # DROM ownership partitions a node's cores, so cores past every
        # curve's saturation point are still owned by someone (their
        # holders simply lend them through LeWI): round-robin spread.
        leftover = total - sum(counts.values())
        for i in range(leftover):
            counts[appranks[i % len(appranks)]] += 1
        return counts

    def _update_deficits(self, view: AllocationView, appranks: list[int],
                         counts: Mapping[int, int], total: int) -> None:
        live = set(appranks)
        for stale in [a for a in self._deficits if a not in live]:
            del self._deficits[stale]
        work_sum = sum(max(0.0, float(view.work.get(a, 0.0)))
                       for a in appranks)
        for apprank in appranks:
            if work_sum > 0.0:
                share = total * max(0.0, float(view.work.get(apprank, 0.0))
                                    ) / work_sum
            else:
                share = total / len(appranks)
            deficit = self._deficits.get(apprank, 0.0) + share - counts[apprank]
            self._deficits[apprank] = max(-float(total),
                                          min(float(total), deficit))

    # -- ClusterReallocationPolicy -----------------------------------------

    def allocate(self, view: AllocationView
                 ) -> dict[int, dict[WorkerKey, int]]:
        """Greedy max-sum-throughput counts, packed onto the nodes."""
        appranks = sorted({a for a, _ in view.edges})
        if not appranks:
            return {n: {} for n in view.node_cores}
        total = sum(view.node_cores[n] for n in view.node_cores)
        curves = self._curves(view, appranks, total)
        counts = self._greedy(appranks, curves, total)
        self._update_deficits(view, appranks, counts, total)

        by_node: dict[int, list[tuple[int, int]]] = {}
        degree: dict[int, int] = {}
        for apprank, node in view.edges:
            by_node.setdefault(node, []).append((apprank, node))
            degree[apprank] = degree.get(apprank, 0) + 1
        if len(by_node) == 1 and all(d == 1 for d in degree.values()):
            # the multi-job case: one fat node, one edge per job — the
            # greedy counts are returned exactly
            node = next(iter(by_node))
            return {node: {key: counts[key[0]]
                           for key in sorted(by_node[node])}}
        # the apprank-level case: apportion each node's cores to its
        # workers weighted by the cluster-wide greedy targets
        from ..balance.rounding import proportional_allocation
        result: dict[int, dict[WorkerKey, int]] = {}
        for node in sorted(view.node_cores):
            workers = sorted(by_node.get(node, []))
            if not workers:
                result[node] = {}
                continue
            weights = {key: counts[key[0]] / degree[key[0]]
                       for key in workers}
            result[node] = dict(proportional_allocation(
                weights, view.node_cores[node], minimum=1))
        return result
