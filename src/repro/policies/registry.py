"""String-keyed policy registries.

One :class:`PolicyRegistry` per decision kind (offload, lend, reclaim,
reallocation) lives in :mod:`repro.policies`. Policies are plain classes
with a ``name`` class attribute; third parties register theirs either
directly::

    from repro.policies import OFFLOAD_POLICIES

    @OFFLOAD_POLICIES.register
    class MyPolicy(OffloadPolicy):
        name = "mine"
        ...

or through entry points (group ``repro.<kind>_policies``), loaded on
demand by :func:`register_entry_points`.
"""

from __future__ import annotations

from typing import Generic, Iterator, TypeVar

from ..errors import PolicyError

__all__ = ["PolicyRegistry", "register_entry_points"]

T = TypeVar("T")


class PolicyRegistry(Generic[T]):
    """Maps policy names to policy classes for one decision kind."""

    def __init__(self, kind: str) -> None:
        #: human-readable kind, used in error messages ("offload", ...)
        self.kind = kind
        self._classes: dict[str, type[T]] = {}

    def register(self, cls: type[T]) -> type[T]:
        """Add a policy class under its ``name``; usable as a decorator.

        Raises :class:`~repro.errors.PolicyError` on a missing/empty name
        or a duplicate registration (two policies answering to one name
        would make ``--policy`` ambiguous).
        """
        name = getattr(cls, "name", "")
        if not isinstance(name, str) or not name:
            raise PolicyError(
                f"{cls.__name__} has no 'name' class attribute; cannot "
                f"register it as a {self.kind} policy")
        if name in self._classes:
            raise PolicyError(
                f"{self.kind} policy name {name!r} already registered "
                f"(by {self._classes[name].__name__})")
        self._classes[name] = cls
        return cls

    def names(self) -> tuple[str, ...]:
        """All registered names, sorted (stable for CLI listings/tests)."""
        return tuple(sorted(self._classes))

    def get(self, name: str) -> type[T]:
        """The class registered under *name*.

        An unknown name raises :class:`~repro.errors.PolicyError` whose
        one-line message lists every registered name.
        """
        try:
            return self._classes[name]
        except KeyError:
            known = ", ".join(self.names()) or "(none)"
            raise PolicyError(
                f"unknown {self.kind} policy {name!r}; registered "
                f"policies: {known}") from None

    def create(self, name: str) -> T:
        """Instantiate the policy registered under *name*."""
        return self.get(name)()

    def __contains__(self, name: object) -> bool:
        return name in self._classes

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._classes)


def register_entry_points(registry: PolicyRegistry[T], group: str) -> int:
    """Load third-party policies advertised as entry points.

    Scans the installed distributions for *group* (e.g.
    ``repro.offload_policies``), loads each entry point and registers the
    class it names. Names already registered are skipped, so calling this
    twice is harmless. Returns the number of newly registered policies;
    a broken entry point raises :class:`~repro.errors.PolicyError`.
    """
    from importlib.metadata import entry_points
    added = 0
    for entry in entry_points(group=group):
        try:
            cls = entry.load()
        except Exception as exc:
            raise PolicyError(
                f"entry point {entry.name!r} in group {group!r} failed to "
                f"load: {exc}") from exc
        if getattr(cls, "name", None) in registry:
            continue
        registry.register(cls)
        added += 1
    return added
