"""Pure decision interfaces for the §5.5 offload scheduler.

The scheduler in :mod:`repro.nanos.scheduler` is mechanism: it owns the
spill queue, dispatch/ack/resend machinery and data movement. *Where* a
ready task runs is decided by an :class:`OffloadPolicy` — a pure strategy
consulted through immutable snapshot views. The purity contract:

* policies never see the :class:`~repro.sim.engine.Simulator`, workers,
  or the data directory — only :class:`TaskView`/:class:`SchedulerView`
  snapshots built by the mechanism for one decision;
* policies must not keep mutable state across calls that affects
  decisions (two identical views must yield identical decisions), which
  is what makes same-seed runs reproducible under every policy;
* a decision is a node id from the view, :data:`KEEP` (run on the home
  node) or :data:`QUEUE` (no node can take it now; spill it).

The default policy (``"tentative"`` in
:data:`repro.policies.OFFLOAD_POLICIES`) reproduces the paper's §5.5
rule bit-identically; see ``tests/policies/test_golden_parity.py``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import ClassVar, Sequence, Union

__all__ = ["KEEP", "QUEUE", "Decision", "TaskView", "NodeView",
           "SchedulerView", "OffloadPolicy"]


class _Sentinel:
    """A named singleton decision marker (:data:`KEEP` / :data:`QUEUE`)."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:
        return self._name


#: Decision: run the task on the apprank's home node.
KEEP = _Sentinel("KEEP")
#: Decision: no node may take the task now; spill it to the queue.
QUEUE = _Sentinel("QUEUE")

#: What :meth:`OffloadPolicy.choose_worker` returns: an adjacent node id,
#: :data:`KEEP`, or :data:`QUEUE`.
Decision = Union[int, _Sentinel]


@dataclass(frozen=True)
class TaskView:
    """What a policy may know about one schedulable task."""

    #: submission-order id (unique within the apprank)
    task_id: int
    #: total bytes of the task's read accesses (0 if it reads nothing)
    input_bytes: int


@dataclass(frozen=True)
class NodeView:
    """One graph-adjacent node as the deciding apprank sees it."""

    node_id: int
    #: False once the worker there crashed (never place work on it)
    alive: bool
    #: cores the apprank's worker *owns* there — LeWI-borrowed cores are
    #: deliberately excluded (§5.5: they can be reclaimed at any moment)
    owned_cores: int
    #: unfinished tasks bound there, excluding taskwait-blocked bodies
    active_tasks: int
    #: bytes of the current task's inputs already resident on this node
    #: (0 in a task-agnostic view, e.g. for :meth:`OffloadPolicy.drain_order`)
    bytes_present: int

    @property
    def load_ratio(self) -> float:
        """Unfinished tasks per owned core — the §5.5 threshold metric."""
        return self.active_tasks / max(self.owned_cores, 1)


@dataclass(frozen=True)
class SchedulerView:
    """Immutable snapshot of one apprank's placement state.

    Built by the mechanism for a single decision; policies must not hold
    on to it across calls.
    """

    apprank: int
    home_node: int
    #: the §5.5 spill threshold (``RuntimeConfig.tasks_per_core``)
    tasks_per_core: int
    #: every graph-adjacent node, in worker-registration order
    nodes: tuple[NodeView, ...]

    def node(self, node_id: int) -> NodeView:
        """The view of one adjacent node (:class:`KeyError` if absent)."""
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise KeyError(node_id)

    def by_locality(self) -> list[int]:
        """Adjacent node ids in §5.5 order: most input bytes resident
        first, the home node winning ties, then node id."""
        return [n.node_id for n in sorted(
            self.nodes,
            key=lambda n: (-n.bytes_present, n.node_id != self.home_node,
                           n.node_id))]


class OffloadPolicy(ABC):
    """Pure placement strategy for the tentative-immediate scheduler.

    Subclasses set :attr:`name` (the registry key) and implement
    :meth:`choose_worker`; :meth:`drain_order` may be overridden to
    reorder the spill queue. Register with
    ``repro.policies.OFFLOAD_POLICIES.register(MyPolicy)``.
    """

    #: registry key; also the value accepted by ``--policy`` and
    #: ``RuntimeConfig.offload_policy``
    name: ClassVar[str] = ""

    @abstractmethod
    def choose_worker(self, task: TaskView, view: SchedulerView) -> Decision:
        """Place one ready task: a node id, :data:`KEEP` or :data:`QUEUE`."""

    def drain_order(self, queue: Sequence[TaskView],
                    view: SchedulerView) -> Sequence[int]:
        """Order (queue positions) in which to retry spilled tasks.

        Must return a permutation of ``range(len(queue))``. The mechanism
        attempts tasks in this order and stops at the first
        :data:`QUEUE` decision. The default is FIFO — together with
        :meth:`choose_worker` stopping the drain, this reproduces the
        seed scheduler's head-of-queue drain exactly.
        """
        return range(len(queue))
