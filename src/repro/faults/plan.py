"""Declarative fault plans (what goes wrong, and when).

A :class:`FaultPlan` is a frozen description of every fault a run will
experience: fail-stop crashes of workers or whole nodes at fixed simulated
times, transient frequency degradations (generalising the static slow-node
multiplier of §6.3), stochastic message faults on the interconnect, and
solver failures in the global policy. Stochastic faults draw from named
RNG streams derived from ``seed`` — the same plan and seed always produce
the same run, and an **empty plan changes nothing at all** (no events, no
draws, byte-identical traces).

Plans are built programmatically or parsed from the compact CLI syntax::

    crash:apprank=1,node=2,t=1.5   # kill apprank 1's worker on node 2
    crash:node=3,t=1.5             # kill node 3 entirely
    degrade:node=1,t=0.5,speed=0.5,dur=2.0
    msg:loss=0.01,delay=0.05,dup=0.01
    solver:p=0.3                   # or solver:ticks=2|4

joined with ``;`` — see :meth:`FaultPlan.parse`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..errors import FaultError

__all__ = ["FaultPlan", "NodeCrash", "WorkerCrash", "NodeDegradation",
           "MessageFaultSpec", "SolverFaultSpec"]


def _check_prob(name: str, p: float) -> None:
    if not 0.0 <= p < 1.0:
        raise FaultError(f"{name} must be in [0, 1), got {p}")


def _check_time(name: str, t: float) -> None:
    if t < 0:
        raise FaultError(f"{name} must be >= 0, got {t}")


@dataclass(frozen=True)
class NodeCrash:
    """Fail-stop crash of a whole node at *time* (simulated seconds).

    Only survivable for nodes hosting no apprank home — see
    :meth:`repro.nanos.runtime.ClusterRuntime.crash_node`.
    """

    node: int
    time: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise FaultError(f"negative node id {self.node}")
        _check_time("crash time", self.time)


@dataclass(frozen=True)
class WorkerCrash:
    """Fail-stop crash of one worker process (a graph edge) at *time*."""

    apprank: int
    node: int
    time: float

    def __post_init__(self) -> None:
        if self.apprank < 0 or self.node < 0:
            raise FaultError(
                f"negative apprank/node in worker crash "
                f"({self.apprank}, {self.node})")
        _check_time("crash time", self.time)


@dataclass(frozen=True)
class NodeDegradation:
    """Transient degradation: the node runs at *speed* from *time* on.

    With *duration* set, the speed in force when the degradation hits is
    restored ``duration`` seconds later — a thermal-throttling episode.
    ``duration=None`` makes the change permanent (the static slow-node
    experiment expressed as a fault).
    """

    node: int
    time: float
    speed: float
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise FaultError(f"negative node id {self.node}")
        _check_time("degradation time", self.time)
        if self.speed <= 0:
            raise FaultError(f"degraded speed must be > 0, got {self.speed}")
        if self.duration is not None and self.duration <= 0:
            raise FaultError(f"degradation duration must be > 0, "
                             f"got {self.duration}")


@dataclass(frozen=True)
class MessageFaultSpec:
    """Stochastic faults on inter-node messages.

    Loss is modelled as a lossy link *under a reliable transport*: each
    drop costs one retransmit round trip instead of hanging MPI matching
    (drops repeat geometrically, so a message may pay several). ``p_delay``
    adds exponential jitter with mean ``mean_delay``; ``p_duplicate``
    delivers an eager message twice (the receiver deduplicates).
    ``p_offload_loss`` governs the offload control plane — the scheduler's
    ack/timeout/backoff protocol, not the MPI transport — and defaults to
    ``p_loss``.
    """

    p_loss: float = 0.0
    p_delay: float = 0.0
    p_duplicate: float = 0.0
    mean_delay: float = 1e-3
    p_offload_loss: Optional[float] = None

    def __post_init__(self) -> None:
        _check_prob("p_loss", self.p_loss)
        _check_prob("p_delay", self.p_delay)
        _check_prob("p_duplicate", self.p_duplicate)
        if self.p_offload_loss is not None:
            _check_prob("p_offload_loss", self.p_offload_loss)
        if self.mean_delay <= 0:
            raise FaultError(f"mean_delay must be > 0, got {self.mean_delay}")

    @property
    def offload_loss(self) -> float:
        """Effective loss probability for offload control messages."""
        return self.p_loss if self.p_offload_loss is None else self.p_offload_loss


@dataclass(frozen=True)
class SolverFaultSpec:
    """Failures of the global LP solver process.

    ``fail_ticks`` (1-based solve indices) fails deterministically chosen
    solves; otherwise each solve fails independently with ``p_fail``.
    """

    p_fail: float = 0.0
    fail_ticks: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        _check_prob("p_fail", self.p_fail)
        if any(t < 1 for t in self.fail_ticks):
            raise FaultError("fail_ticks are 1-based solve indices")


Crash = Union[NodeCrash, WorkerCrash]


@dataclass(frozen=True)
class FaultPlan:
    """Everything that will go wrong in one run."""

    crashes: tuple[Crash, ...] = ()
    degradations: tuple[NodeDegradation, ...] = ()
    messages: Optional[MessageFaultSpec] = None
    solver: Optional[SolverFaultSpec] = None
    seed: int = 0

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing (the run must be unchanged)."""
        no_messages = self.messages is None or (
            self.messages.p_loss == 0 and self.messages.p_delay == 0
            and self.messages.p_duplicate == 0
            and self.messages.offload_loss == 0)
        no_solver = self.solver is None or (
            self.solver.p_fail == 0 and not self.solver.fail_ticks)
        return (not self.crashes and not self.degradations
                and no_messages and no_solver)

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse the ``;``-separated CLI fault syntax (see module doc)."""
        crashes: list[Crash] = []
        degradations: list[NodeDegradation] = []
        messages: Optional[MessageFaultSpec] = None
        solver: Optional[SolverFaultSpec] = None
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            kind, _, body = part.partition(":")
            fields = _parse_fields(part, body)
            try:
                if kind == "crash":
                    if "apprank" in fields:
                        crashes.append(WorkerCrash(
                            apprank=int(fields.pop("apprank")),
                            node=int(fields.pop("node")),
                            time=float(fields.pop("t"))))
                    else:
                        crashes.append(NodeCrash(
                            node=int(fields.pop("node")),
                            time=float(fields.pop("t"))))
                elif kind == "degrade":
                    degradations.append(NodeDegradation(
                        node=int(fields.pop("node")),
                        time=float(fields.pop("t")),
                        speed=float(fields.pop("speed")),
                        duration=(float(fields.pop("dur"))
                                  if "dur" in fields else None)))
                elif kind == "msg":
                    messages = MessageFaultSpec(
                        p_loss=float(fields.pop("loss", 0.0)),
                        p_delay=float(fields.pop("delay", 0.0)),
                        p_duplicate=float(fields.pop("dup", 0.0)),
                        mean_delay=float(fields.pop("mean_delay", 1e-3)),
                        p_offload_loss=(float(fields.pop("offload_loss"))
                                        if "offload_loss" in fields else None))
                elif kind == "solver":
                    ticks = fields.pop("ticks", "")
                    solver = SolverFaultSpec(
                        p_fail=float(fields.pop("p", 0.0)),
                        fail_ticks=tuple(int(t)
                                         for t in ticks.split("|") if t))
                else:
                    raise FaultError(
                        f"unknown fault kind {kind!r} in {part!r}")
            except KeyError as exc:
                raise FaultError(f"fault {part!r} is missing required "
                                 f"field {exc.args[0]!r}") from None
            except ValueError as exc:
                raise FaultError(
                    f"bad value in fault {part!r}: {exc}") from None
            if fields:
                raise FaultError(
                    f"unknown fields {sorted(fields)} in fault {part!r}")
        return cls(crashes=tuple(crashes), degradations=tuple(degradations),
                   messages=messages, solver=solver, seed=seed)


def _parse_fields(part: str, body: str) -> dict[str, str]:
    fields: dict[str, str] = {}
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        if not sep:
            raise FaultError(f"malformed field {item!r} in fault {part!r}")
        fields[key.strip()] = value.strip()
    return fields
