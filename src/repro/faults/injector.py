"""Fault execution: turning a :class:`FaultPlan` into simulated events.

The :class:`FaultInjector` is created by :class:`ClusterRuntime` when a
non-empty plan is supplied and armed from ``start()``. It schedules the
deterministic faults (crashes, degradations) on the simulated clock,
installs the :class:`MessageFaultModel` on the MPI world, hooks solver
failures into the global policy, and switches every apprank scheduler to
the acknowledged offload protocol. All stochastic draws come from named
streams of one seeded :class:`~repro.sim.rng.RngRegistry`, so a plan replays
identically and adding one fault type never perturbs the draws of another.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from ..sim.rng import RngRegistry
from .plan import FaultPlan, MessageFaultSpec, NodeCrash, WorkerCrash

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mpisim.message import Envelope
    from ..nanos.runtime import ClusterRuntime
    from ..nanos.task import Task

__all__ = ["FaultInjector", "MessageFaultModel"]


class MessageFaultModel:
    """Per-message fault draws for the MPI transport.

    Installed on :class:`repro.mpisim.world.MpiWorld`; consulted only for
    inter-node messages. Losses never hang MPI matching: the link is lossy
    but the transport is reliable, so each drop costs one retransmit round
    trip of extra latency (drawn geometrically — a message can pay
    several). Duplicates are delivered twice and deduplicated at the
    receiver by envelope sequence number.
    """

    def __init__(self, spec: MessageFaultSpec, rng: np.random.Generator,
                 retransmit_time: float) -> None:
        self.spec = spec
        self.rng = rng
        self.retransmit_time = retransmit_time
        #: envelope seq -> copies sent, for receiver-side deduplication
        self._dup_copies: dict[int, int] = {}
        self._arrived: dict[int, int] = {}
        self.drops = 0
        self.delays = 0
        self.duplicates = 0
        self.suppressed = 0

    def on_send(self, env: "Envelope", allow_duplicate: bool) -> tuple[float, int]:
        """Draw this message's fate: (extra delay, copies to deliver).

        *allow_duplicate* is False on the rendezvous path — the RTS/CTS
        handshake deduplicates naturally, so only eager messages can be
        duplicated.
        """
        spec = self.spec
        extra = 0.0
        while spec.p_loss > 0 and float(self.rng.random()) < spec.p_loss:
            self.drops += 1
            extra += self.retransmit_time
        if spec.p_delay > 0 and float(self.rng.random()) < spec.p_delay:
            self.delays += 1
            extra += float(self.rng.exponential(spec.mean_delay))
        copies = 1
        if (allow_duplicate and spec.p_duplicate > 0
                and float(self.rng.random()) < spec.p_duplicate):
            self.duplicates += 1
            copies = 2
            self._dup_copies[env.seq] = copies
        return extra, copies

    def accept(self, env: "Envelope") -> bool:
        """Receiver-side dedupe: True for the first arrival of a message."""
        copies = self._dup_copies.get(env.seq)
        if copies is None:
            return True
        arrived = self._arrived.get(env.seq, 0) + 1
        if arrived >= copies:
            del self._dup_copies[env.seq]
            self._arrived.pop(env.seq, None)
        else:
            self._arrived[env.seq] = arrived
        if arrived == 1:
            return True
        self.suppressed += 1
        return False

    def stats(self) -> dict[str, int]:
        return {
            "drops": self.drops,
            "delays": self.delays,
            "duplicates": self.duplicates,
            "suppressed": self.suppressed,
        }


class FaultInjector:
    """Arms one fault plan against one :class:`ClusterRuntime`."""

    def __init__(self, runtime: "ClusterRuntime", plan: FaultPlan) -> None:
        self.runtime = runtime
        self.plan = plan
        self.rng = RngRegistry(plan.seed)
        self.message_model: Optional[MessageFaultModel] = None
        self._offload_stream = self.rng.stream("faults.offload")
        self._solver_stream = self.rng.stream("faults.solver")
        self._offload_loss = (plan.messages.offload_loss
                              if plan.messages is not None else 0.0)
        self._solver_ticks = 0
        self.armed = False
        #: (time, description) per executed crash
        self.crash_log: list[tuple[float, str]] = []
        #: tasks that were lost and re-submitted (for recovery timing)
        self.lost_tasks: list["Task"] = []

    # -- wiring --------------------------------------------------------------

    def arm(self) -> None:
        """Schedule the plan's events and install the stochastic hooks."""
        if self.armed:
            return
        self.armed = True
        runtime = self.runtime
        sim = runtime.sim
        for crash in self.plan.crashes:
            if isinstance(crash, WorkerCrash):
                sim.schedule_at(
                    crash.time, lambda c=crash: self._crash_worker(c),
                    label=f"fault-crash:a{crash.apprank}n{crash.node}")
            else:
                sim.schedule_at(crash.time,
                                lambda c=crash: self._crash_node(c),
                                label=f"fault-crash:n{crash.node}")
        for degradation in self.plan.degradations:
            sim.schedule_at(degradation.time,
                            lambda d=degradation: self._degrade(d),
                            label=f"fault-degrade:n{degradation.node}")
        if self.plan.messages is not None:
            net = runtime.cluster.network
            self.message_model = MessageFaultModel(
                self.plan.messages, self.rng.stream("faults.msg"),
                retransmit_time=2 * (net.latency_s + net.overhead_s))
            runtime.world.fault_model = self.message_model
        if self.plan.solver is not None and runtime.policy is not None \
                and hasattr(runtime.policy, "fault_hook"):
            runtime.policy.fault_hook = self.solver_fails
        # The acknowledged offload protocol is the recovery substrate for
        # both lost control messages and crashed workers, so every fault
        # run uses it (an empty plan never constructs an injector at all).
        for apprank_rt in runtime.appranks:
            apprank_rt.scheduler.faults = self

    # -- deterministic faults -------------------------------------------------

    def _crash_worker(self, crash: WorkerCrash) -> None:
        self.crash_log.append(
            (self.runtime.sim.now, f"worker:a{crash.apprank}n{crash.node}"))
        self.runtime.crash_worker(crash.apprank, crash.node)

    def _crash_node(self, crash: NodeCrash) -> None:
        self.crash_log.append((self.runtime.sim.now, f"node:n{crash.node}"))
        self.runtime.crash_node(crash.node)

    def _degrade(self, degradation) -> None:
        node = self.runtime.cluster.node(degradation.node)
        previous = node.speed
        node.set_speed(degradation.speed)
        trace = self.runtime.trace
        obs = self.runtime.obs
        if trace is not None:
            trace.add_event(self.runtime.sim.now, "degrade",
                            node=degradation.node, speed=degradation.speed)
        if obs is not None:
            obs.fault("degrade", node=degradation.node,
                      speed=degradation.speed)
        if degradation.duration is not None:
            def restore() -> None:
                node.set_speed(previous)
                if trace is not None:
                    trace.add_event(self.runtime.sim.now, "degrade-end",
                                    node=degradation.node, speed=previous)
                if obs is not None:
                    obs.fault("degrade-end", node=degradation.node,
                              speed=previous)
            self.runtime.sim.schedule(
                degradation.duration, restore,
                label=f"fault-degrade-end:n{degradation.node}")

    # -- stochastic draws ------------------------------------------------------

    def offload_send_lost(self) -> bool:
        """Does this offload control message get lost?"""
        p = self._offload_loss
        return p > 0 and float(self._offload_stream.random()) < p

    def offload_ack_lost(self) -> bool:
        """Does the acknowledgement of a delivered offload get lost?"""
        p = self._offload_loss
        return p > 0 and float(self._offload_stream.random()) < p

    def solver_fails(self) -> bool:
        """Global-policy hook: does this LP solve fail?"""
        self._solver_ticks += 1
        spec = self.plan.solver
        if spec is None:
            return False
        if spec.fail_ticks:
            return self._solver_ticks in spec.fail_ticks
        return (spec.p_fail > 0
                and float(self._solver_stream.random()) < spec.p_fail)

    # -- recovery accounting ---------------------------------------------------

    def note_recovered(self, task: "Task") -> None:
        """Runtime callback: *task* was lost and re-submitted."""
        self.lost_tasks.append(task)

    def recovery_time(self) -> Optional[float]:
        """Seconds from the first crash until the last lost task finished."""
        if not self.crash_log or not self.lost_tasks:
            return None
        finishes = [t.finish_time for t in self.lost_tasks
                    if t.finish_time is not None]
        if not finishes:
            return None
        return max(finishes) - min(t for t, _ in self.crash_log)

    def stats(self) -> dict[str, Any]:
        stats: dict[str, Any] = {
            "crashes": len(self.crash_log),
            "tasks_lost": len(self.lost_tasks),
            "recovery_time": self.recovery_time(),
        }
        if self.message_model is not None:
            stats["messages"] = self.message_model.stats()
        policy = self.runtime.policy
        if policy is not None and hasattr(policy, "fallbacks"):
            stats["solver_fallbacks"] = policy.fallbacks
        return stats
