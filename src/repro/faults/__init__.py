"""Deterministic fault injection and the resilience it exercises.

Build a :class:`FaultPlan` (or parse one from the CLI syntax), hand it to
:class:`repro.nanos.runtime.ClusterRuntime`, and the runtime absorbs the
faults: crashed workers' tasks are re-executed, lost offload messages are
re-sent with timeout + exponential backoff, dead nodes are masked from
scheduling and DLB, and a failed LP solve falls back to the last feasible
allocation. An empty plan injects nothing and leaves runs byte-identical.
"""

from .injector import FaultInjector, MessageFaultModel
from .plan import (FaultPlan, MessageFaultSpec, NodeCrash, NodeDegradation,
                   SolverFaultSpec, WorkerCrash)

__all__ = [
    "FaultPlan",
    "NodeCrash",
    "WorkerCrash",
    "NodeDegradation",
    "MessageFaultSpec",
    "SolverFaultSpec",
    "FaultInjector",
    "MessageFaultModel",
]
