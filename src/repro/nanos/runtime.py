"""ClusterRuntime: the whole MPI+OmpSs-2@Cluster+DLB stack for one run.

Assembles (Figure 2): the simulated cluster, the expander graph and worker
placement, one DLB arbiter per node with LeWI/DROM facades, one
:class:`~repro.nanos.apprank.AppRankRuntime` per application rank with its
workers, the selected core-allocation policy, TALP, optional tracing, and
the simulated MPI world whose world communicator plays the role of
``nanos6_app_communicator()``.

The application is an SPMD generator ``main(comm, rt, *args)`` — *comm* is
the apprank's MPI view, *rt* its runtime (``submit``/``taskwait``) — run to
completion with :meth:`ClusterRuntime.run_app`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Generator, Optional

from ..balance.dynamic import DynamicSpreader
from ..balance.global_policy import GlobalLpPolicy
from ..balance.local_policy import LocalConvergencePolicy
from ..cluster.topology import Cluster, ClusterSpec
from ..dlb.drom import DromModule
from ..dlb.lewi import LewiModule
from ..dlb.shmem import NodeArbiter
from ..dlb.talp import TalpModule, TalpReport
from ..errors import (FaultError, NodeFailedError, RuntimeModelError,
                      SimulationError, TaskLostError)
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..graph.cache import get_graph
from ..graph.placement import WorkerKey, build_placement
from ..metrics.trace import TraceRecorder
from ..mpisim.world import MpiWorld
from ..policies import (LEND_POLICIES, REALLOCATION_POLICIES,
                        RECLAIM_POLICIES, NodeReallocationPolicy)
from ..sim.engine import Simulator
from ..sim.events import Event, EventPriority
from .apprank import AppRankRuntime
from .config import RuntimeConfig
from .task import Task, TaskState
from .worker import Worker

__all__ = ["ClusterRuntime"]

AppMain = Callable[..., Generator[Any, Any, Any]]


class ClusterRuntime:
    """One fully wired simulated execution environment."""

    def __init__(self, spec: ClusterSpec, num_appranks: int,
                 config: RuntimeConfig,
                 faults: Optional[FaultPlan] = None,
                 home_nodes: Optional[int] = None) -> None:
        t_setup = perf_counter()
        self.spec = spec
        self.config = config
        self.num_appranks = num_appranks
        self.sim = Simulator()
        self.cluster = Cluster(spec)
        #: nodes participating in the static graph (homes + helpers);
        #: nodes beyond this are *spares*, reachable only by add_helper —
        #: the substrate for surviving a whole-node crash
        self.home_nodes = spec.num_nodes if home_nodes is None else home_nodes
        if not 1 <= self.home_nodes <= spec.num_nodes:
            raise RuntimeModelError(
                f"home_nodes={home_nodes} outside 1..{spec.num_nodes}")
        self.graph = get_graph(num_appranks, self.home_nodes,
                               config.offload_degree,
                               seed=config.graph_seed,
                               use_cache=config.use_graph_cache)
        self.placement = build_placement(self.graph,
                                         spec.machine.cores_per_node)
        self.trace: Optional[TraceRecorder] = (
            TraceRecorder(self.sim) if config.trace else None)
        #: structured instrumentation (event bus + metrics). The import is
        #: deliberately lazy: a disabled run never even loads repro.obs.
        self.obs = None
        if config.obs:
            from ..obs import Observability
            self.obs = Observability(self.sim)
            self.sim.tracer = self.obs
        #: invariant sanitizer (lazily imported like obs; purely passive)
        self.validator = None
        if config.validate:
            from ..validate import Sanitizer
            self.validator = Sanitizer(self.sim, obs=self.obs)
            self.sim.validator = self.validator
        #: wall-clock recorder (lazily imported like obs; reads only the
        #: host clock, so arming it cannot perturb the simulated run)
        self.perf = None
        if config.perf:
            from ..perf import PerfRecorder
            self.perf = PerfRecorder()
            self.sim.perf = self.perf
        self.talp = TalpModule(spec.total_cores)

        # One lend/reclaim policy instance per node mirrors the per-node
        # DLB shared-memory segments (policies are pure, but sharing one
        # instance across nodes would hide accidental state).
        self.arbiters: dict[int, NodeArbiter] = {
            node.node_id: NodeArbiter(
                node, lewi_enabled=config.lewi,
                on_ownership_change=self._ownership_changed,
                obs=self.obs,
                lend_policy=LEND_POLICIES.create(config.lend_policy),
                reclaim_policy=RECLAIM_POLICIES.create(config.reclaim_policy),
                validator=self.validator, perf=self.perf)
            for node in self.cluster.nodes
        }
        self.lewi = LewiModule(self.arbiters, enabled=config.lewi)
        self.drom = DromModule(self.arbiters, enabled=config.drom)

        self.appranks: list[AppRankRuntime] = []
        self.workers: dict[WorkerKey, Worker] = {}
        self._build_appranks()
        self._initialize_ownership()

        #: MPI world containing only the appranks (the app communicator);
        #: helper-rank control traffic is modelled directly on the network.
        self.world = MpiWorld(
            self.sim, self.cluster,
            rank_to_node=[self.graph.home_node(a) for a in range(num_appranks)])
        self.app_comm = self.world.world_comm
        # TALP intercepts the appranks' MPI calls (§3.3); world rank ==
        # apprank id in this wiring.
        self.world.talp_hook = self.talp.add_mpi
        self.world.obs = self.obs
        self.world.validator = self.validator

        self.policy = self._build_policy()
        self.spreader: Optional[DynamicSpreader] = (
            DynamicSpreader(self, period=config.dynamic_period,
                            patience=config.dynamic_patience,
                            max_degree=config.dynamic_max_degree,
                            spawn_latency=config.dynamic_spawn_latency)
            if config.dynamic_spreading else None)
        #: node -> appranks with a worker there (kept current as dynamic
        #: spreading adds helpers; the static graph only knows t=0)
        self._appranks_on_node: dict[int, set[int]] = {
            n: (set(self.graph.appranks_on(n))
                if n < self.graph.num_nodes else set())
            for n in range(spec.num_nodes)
        }
        self._trace_event: Optional[Event] = None
        self.elapsed: Optional[float] = None

        #: nodes that crashed mid-run (their cores never run again)
        self.dead_nodes: set[int] = set()
        #: crashed workers, kept for their execution counters
        self.dead_workers: list[Worker] = []
        self.tasks_recovered = 0
        self.faults: Optional[FaultInjector] = (
            FaultInjector(self, faults)
            if faults is not None and not faults.empty else None)
        if self.perf is not None:
            self.perf.add_phase("setup", perf_counter() - t_setup)

    # -- construction -------------------------------------------------------

    def _build_appranks(self) -> None:
        network = self.cluster.network
        for apprank_id in range(self.num_appranks):
            home = self.graph.home_node(apprank_id)
            worker_map: dict[int, Worker] = {}
            runtime = AppRankRuntime(self.sim, apprank_id, home, worker_map,
                                     network, self.config, obs=self.obs,
                                     validator=self.validator)
            for node_id in self.graph.nodes_of(apprank_id):
                worker = Worker(self.sim, (apprank_id, node_id),
                                self.cluster.node(node_id),
                                self.arbiters[node_id],
                                on_task_finished=runtime.on_task_finished,
                                talp=self.talp, trace=self.trace,
                                obs=self.obs, validator=self.validator)
                worker.apprank_runtime = runtime
                worker_map[node_id] = worker
                self.workers[worker.key] = worker
                self.arbiters[node_id].register_worker(worker)
            self.appranks.append(runtime)

    def _initialize_ownership(self) -> None:
        for node_id, workers_here in enumerate(self.placement.workers_by_node):
            counts = {key: self.placement.initial_cores[key]
                      for key in workers_here}
            self.arbiters[node_id].initialize_ownership(counts)

    def _build_policy(self):
        if self.config.policy is None:
            return None
        strategy = REALLOCATION_POLICIES.create(self.config.policy)
        node_cores = {n: self.spec.machine.cores_per_node
                      for n in range(self.spec.num_nodes)}
        # Per-node strategies ride the local convergence driver (its tick,
        # EMA and warmup); cluster-wide ones ride the global LP driver
        # (its gather/solve latency model and solver-failure fallback).
        if isinstance(strategy, NodeReallocationPolicy):
            workers_by_node = {
                node_id: [self.workers[key] for key in keys]
                for node_id, keys in enumerate(self.placement.workers_by_node)
            }
            return LocalConvergencePolicy(
                self.sim, self.drom, workers_by_node, node_cores,
                period=self.config.local_period, strategy=strategy)
        node_speed = {n: self.spec.node_speed(n)
                      for n in range(self.spec.num_nodes)}
        return GlobalLpPolicy(
            self.sim, self.graph, self.drom, self.workers, node_cores,
            node_speed, self.cluster.network,
            period=self.config.global_period,
            offload_penalty=self.config.offload_penalty,
            model_solver_cost=self.config.model_solver_cost,
            partition_nodes=self.config.global_partition_nodes,
            strategy=strategy)

    # -- hooks ---------------------------------------------------------------

    def _ownership_changed(self, node_id: int) -> None:
        """DROM moved cores on *node_id*: re-evaluate spill queues and traces."""
        for apprank_id in self._appranks_on_node[node_id]:
            self.appranks[apprank_id].scheduler.drain()
        if self.trace is not None:
            self._sample_ownership()
        if self.obs is not None:
            self.obs.ownership_sample(
                node_id, self.arbiters[node_id].ownership_counts())

    def _sample_ownership(self) -> None:
        now = self.sim.now
        for node_id, arbiter in self.arbiters.items():
            for key, count in arbiter.ownership_counts().items():
                apprank_id, _node = key
                self.trace.set_owned(now, node_id, apprank_id, count)

    def _trace_tick(self) -> None:
        self._sample_ownership()
        self._trace_event = self.sim.schedule(
            self.config.trace_period, self._trace_tick,
            priority=EventPriority.TRACE, label="trace-sample")

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Arm policies, TALP, tracing and faults; lend initially idle cores."""
        if self.faults is not None:
            self.faults.arm()
            if self.validator is not None:
                # Message losses legitimately reorder deliveries; the
                # sanitizer keeps conservation checks but drops FIFO.
                self.validator.relax_message_order()
        self.talp.start(self.sim.now)
        for key in self.placement.workers:
            self.arbiters[key[1]].lend_idle_cores(key)
        if self.policy is not None:
            self.policy.start()
        if self.spreader is not None:
            self.spreader.start()
        if self.trace is not None:
            self._sample_ownership()
            self._trace_event = self.sim.schedule(
                self.config.trace_period, self._trace_tick,
                priority=EventPriority.TRACE, label="trace-sample")
        if self.obs is not None:
            for node_id, arbiter in self.arbiters.items():
                self.obs.ownership_sample(node_id,
                                          arbiter.ownership_counts())

    def stop(self) -> None:
        """Disarm policies, the spreader and tracing (idempotent)."""
        if self.policy is not None:
            self.policy.stop()
        if self.spreader is not None:
            self.spreader.stop()
        if self._trace_event is not None:
            self.sim.cancel(self._trace_event)
            self._trace_event = None

    def add_helper(self, apprank_id: int, node_id: int) -> Worker:
        """Grow the spreading graph at runtime (§5.2's dynamic extension).

        Creates a helper worker for *apprank_id* on *node_id*, registers it
        with the node's DLB arbiter, seeds it with the one-core DROM floor
        (taken from the node's largest owner), and plugs it into the active
        allocation policy. The §5.5 scheduler sees the new node on the next
        placement decision.
        """
        apprank_rt = self.apprank(apprank_id)
        if node_id in apprank_rt.workers:
            raise RuntimeModelError(
                f"apprank {apprank_id} already reaches node {node_id}")
        if node_id in self.dead_nodes:
            raise RuntimeModelError(f"node {node_id} has failed")
        arbiter = self.arbiters[node_id]
        cores = self.spec.machine.cores_per_node
        if len(arbiter.workers) >= cores:
            raise RuntimeModelError(
                f"node {node_id} cannot host another one-core floor")
        worker = Worker(self.sim, (apprank_id, node_id),
                        self.cluster.node(node_id), arbiter,
                        on_task_finished=apprank_rt.on_task_finished,
                        talp=self.talp, trace=self.trace, obs=self.obs,
                        validator=self.validator)
        worker.apprank_runtime = apprank_rt
        arbiter.register_worker(worker)
        if len(arbiter.workers) == 1:
            # Virgin node (a spare outside the home graph, or one whose
            # workers all crashed and retired): the first helper owns it.
            apprank_rt.workers[node_id] = worker
            self.workers[worker.key] = worker
            self._appranks_on_node[node_id].add(apprank_id)
            arbiter.initialize_ownership({worker.key: cores})
            arbiter.lend_idle_cores(worker.key)
            if self.policy is not None:
                self.policy.add_worker(worker)
            apprank_rt.scheduler.drain()
            return worker
        # Seed the DLB floor: take one core from the node's largest owner
        # (by effective ownership — in-flight DROM transfers count at their
        # target, or a floor-owning worker could be picked as donor).
        counts = arbiter.effective_counts()
        donor = max(counts, key=lambda key: (counts[key], key))
        if counts[donor] < 2:
            raise RuntimeModelError(
                f"node {node_id} has no spare core for a new helper")
        counts[donor] -= 1
        counts[worker.key] = 1
        apprank_rt.workers[node_id] = worker
        self.workers[worker.key] = worker
        self._appranks_on_node[node_id].add(apprank_id)
        arbiter.set_ownership(counts)
        if self.policy is not None:
            self.policy.add_worker(worker)
        apprank_rt.scheduler.drain()      # new capacity for the spill queue
        return worker

    def schedule_speed_change(self, at_time: float, node_id: int,
                              speed: float) -> None:
        """Inject a DVFS/thermal event: *node_id* runs at *speed* from
        *at_time* on (tasks started later take ``nominal/speed``).

        Call before :meth:`run_app`. This is the paper's motivating
        system-level imbalance (§1: "DVFS ... thermal and power
        management") made injectable; the policies are expected to react.
        """
        node = self.cluster.node(node_id)
        self.sim.schedule_at(at_time, lambda: node.set_speed(speed),
                             label=f"speed-change:n{node_id}")

    # -- fault handling ----------------------------------------------------

    def crash_worker(self, apprank_id: int, node_id: int) -> None:
        """A helper worker process dies at the current simulated time.

        The §5.5 contract says offloading is final — except here: tasks
        lost with the worker (running, queued, or still in flight to it)
        are re-submitted to the apprank's scheduler, bounded per task by
        ``config.max_retries``. The crash of an apprank's *main* worker
        (home node) is not survivable: the dependency graph and the
        application process live there.
        """
        apprank_rt = self.apprank(apprank_id)
        worker = apprank_rt.workers.get(node_id)
        if worker is None:
            raise FaultError(
                f"apprank {apprank_id} has no worker on node {node_id}")
        if node_id == apprank_rt.home_node:
            raise NodeFailedError(
                f"apprank {apprank_id}'s main worker (home node {node_id}) "
                "crashed; its dependency graph and application process are "
                "not recoverable")
        lost = self._take_down(worker)
        self.arbiters[node_id].retire_worker(worker.key)
        apprank_rt.directory.drop_node(node_id)
        if self.trace is not None:
            self.trace.add_event(self.sim.now, "worker-crash", node=node_id,
                                 apprank=apprank_id, tasks_lost=len(lost))
        if self.obs is not None:
            self.obs.fault("worker-crash", node=node_id, apprank=apprank_id,
                           tasks_lost=len(lost))
        self._recover_tasks(lost)

    def crash_node(self, node_id: int) -> None:
        """A whole node dies: kill its workers, freeze its cores, recover.

        Only survivable for nodes hosting no apprank home — run with
        ``home_nodes < spec.num_nodes`` and grow onto the spares via
        :meth:`add_helper` to model crash-tolerant deployments.
        """
        if node_id in self.dead_nodes:
            raise FaultError(f"node {node_id} crashed twice")
        victims = [self.appranks[a].workers[node_id]
                   for a in sorted(self._appranks_on_node[node_id])]
        for worker in victims:
            if self.appranks[worker.apprank].home_node == node_id:
                raise NodeFailedError(
                    f"node {node_id} hosts apprank {worker.apprank}'s home; "
                    "a home-node crash is not recoverable (use spare nodes "
                    "via home_nodes= for survivable node crashes)")
        lost: list[Task] = []
        for worker in victims:
            lost.extend(self._take_down(worker))
        self.arbiters[node_id].fail_node()
        self.dead_nodes.add(node_id)
        for worker in victims:
            self.appranks[worker.apprank].directory.drop_node(node_id)
        if self.policy is not None and hasattr(self.policy, "remove_node"):
            self.policy.remove_node(node_id)
        if self.trace is not None:
            self.trace.add_event(self.sim.now, "node-crash", node=node_id,
                                 tasks_lost=len(lost))
        if self.obs is not None:
            self.obs.fault("node-crash", node=node_id, tasks_lost=len(lost))
        self._recover_tasks(lost)

    def _take_down(self, worker: Worker) -> list[Task]:
        """Common crash bookkeeping for one worker; returns its lost tasks."""
        apprank_rt = self.appranks[worker.apprank]
        lost = worker.kill()
        apprank_rt.workers.pop(worker.node_id, None)
        self.workers.pop(worker.key, None)
        self._appranks_on_node[worker.node_id].discard(worker.apprank)
        lost.extend(apprank_rt.scheduler.recover_dispatches(worker.node_id))
        if self.policy is not None:
            self.policy.remove_worker(worker)
        self.dead_workers.append(worker)
        return lost

    def _recover_tasks(self, tasks: list[Task]) -> None:
        """Re-submit lost tasks to their appranks' schedulers."""
        for task in sorted(tasks, key=lambda t: t.task_id):
            task.retries += 1
            if task.retries > self.config.max_retries:
                raise TaskLostError(
                    f"{task!r} lost {task.retries} times "
                    f"(max_retries={self.config.max_retries})", task=task)
            task.state = TaskState.READY
            task.assigned_node = None
            task.start_time = None
            self.tasks_recovered += 1
            if self.faults is not None:
                self.faults.note_recovered(task)
            if self.trace is not None:
                self.trace.add_event(self.sim.now, "task-recovered",
                                     apprank=task.apprank,
                                     task_id=task.task_id, retry=task.retries)
            if self.obs is not None:
                self.obs.fault("task-recovered", apprank=task.apprank,
                               task_id=task.task_id, retry=task.retries)
            self.appranks[task.apprank].scheduler.on_ready(task)

    def apprank(self, apprank_id: int) -> AppRankRuntime:
        """The per-apprank runtime handle (range-checked)."""
        if not 0 <= apprank_id < self.num_appranks:
            raise RuntimeModelError(f"apprank {apprank_id} out of range")
        return self.appranks[apprank_id]

    def run_app(self, main: AppMain, args: tuple = ()) -> list[Any]:
        """Run ``main(comm, rt, *args)`` SPMD across the appranks.

        Returns each apprank's return value; ``self.elapsed`` holds the
        simulated time-to-solution.
        """
        perf = self.perf
        t_mark = perf_counter()
        self.start()
        remaining = self.num_appranks
        results: list[Any] = [None] * self.num_appranks

        processes = []
        for apprank_id in range(self.num_appranks):
            comm = self.app_comm.view(apprank_id)
            gen = main(comm, self.appranks[apprank_id], *args)
            processes.append(self.sim.spawn(gen, name=f"apprank{apprank_id}"))

        def on_done(_value: Any) -> None:
            nonlocal remaining
            remaining -= 1

        for process in processes:
            process._subscribe(self.sim, on_done)

        events_before = self.sim.events_fired
        if perf is not None:
            now = perf_counter()
            perf.add_phase("setup", now - t_mark)
            t_mark = now
            # One dispatch frame around the whole drain: nested subsystem
            # frames subtract from it, so attribution is identical to the
            # old per-event framing at none of the per-event clock cost.
            perf.begin("engine.dispatch")
        try:
            sim = self.sim
            if sim._validator is None:
                # Inlined drain: same loop as Simulator.run's fast path,
                # with the apprank-completion counter as the stop test.
                queue = sim._queue
                pop = queue.pop
                fired = 0
                try:
                    while remaining > 0:
                        if not queue._live:
                            stuck = [p.name for p in processes if not p.done]
                            raise SimulationError(
                                "deadlock: appranks never finished: "
                                f"{', '.join(stuck)}")
                        event = pop()
                        sim._now = event.time
                        fired += 1
                        event.callback()
                finally:
                    sim.events_fired += fired
            else:
                step = sim.step
                while remaining > 0:
                    if not step():
                        stuck = [p.name for p in processes if not p.done]
                        raise SimulationError(
                            f"deadlock: appranks never finished: "
                            f"{', '.join(stuck)}")
            self.stop()
            self.sim.run()   # drain task completions of fire-and-forget apps
        finally:
            if perf is not None:
                perf.end()
        if perf is not None:
            now = perf_counter()
            perf.add_phase("event_loop", now - t_mark)
            perf.events_processed += self.sim.events_fired - events_before
            t_mark = now
        self.elapsed = self.sim.now
        if self.obs is not None:
            self.obs.finish(self.elapsed)
        if self.validator is not None:
            self.validator.finish(self)
        for i, process in enumerate(processes):
            results[i] = process.result
        if perf is not None:
            perf.add_phase("teardown", perf_counter() - t_mark)
        return results

    # -- reporting --------------------------------------------------------

    def talp_report(self) -> TalpReport:
        """Live TALP efficiency snapshot at the current sim time."""
        return self.talp.snapshot(self.sim.now)

    def total_offloaded(self) -> int:
        """Tasks executed away from their apprank's home node, so far."""
        return sum(rt.scheduler.tasks_offloaded for rt in self.appranks)

    def stats(self) -> dict[str, Any]:
        """Run-level counters (tasks, offloads, DLB activity, messages)."""
        stats = {
            "elapsed": self.elapsed,
            "events": self.sim.events_fired,
            "tasks": sum(rt.tasks_submitted for rt in self.appranks),
            "executed": (sum(w.tasks_executed for w in self.workers.values())
                         + sum(w.tasks_executed for w in self.dead_workers)),
            "offloaded": self.total_offloaded(),
            "lewi": self.lewi.stats(),
            "drom_changes": self.drom.total_changes,
            "drom_cores_moved": self.drom.total_cores_moved,
            "mpi_messages": self.world.messages_sent,
        }
        if self.faults is not None:
            stats["faults"] = self.faults.stats()
            stats["tasks_recovered"] = self.tasks_recovered
            stats["offload_resends"] = sum(
                rt.scheduler.offload_resends for rt in self.appranks)
        return stats
