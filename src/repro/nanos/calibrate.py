"""Calibrated task functions: bring your own kernel.

The paper's toolchain turns pragma-annotated C functions into tasks whose
cost is whatever the code takes. The simulator needs durations instead.
:class:`CalibratedTask` bridges the two: wrap a real Python kernel, measure
it once per argument-shape class (median of a few repetitions), and from
then on ``submit`` simulator tasks carrying the measured duration — so a
real kernel's cost structure drives the simulated schedule, as in
``examples/micropp_rve.py``.

The wrapped function is *not* re-executed per simulated task (the
simulator models thousands of tasks); calibration runs it
``calibration_runs`` times per distinct key. Pass ``key=`` to group
argument shapes that share a cost (e.g. mesh size), or rely on the default
shape-based key for numpy arguments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

import numpy as np

from ..errors import RuntimeModelError
from .apprank import AppRankRuntime
from .task import DataAccess, Task

__all__ = ["CalibratedTask"]


def _default_key(args: tuple, kwargs: dict) -> Hashable:
    """Cost class of a call: numpy shapes/dtypes + scalar values."""
    parts: list[Hashable] = []
    for value in list(args) + sorted(kwargs.items()):
        if isinstance(value, tuple):
            _name, value = value
        if isinstance(value, np.ndarray):
            parts.append(("array", value.shape, str(value.dtype)))
        elif isinstance(value, (int, float, str, bool)) or value is None:
            parts.append(("scalar", value))
        else:
            parts.append(("object", type(value).__name__))
    return tuple(parts)


@dataclass
class CalibratedTask:
    """A real kernel plus its measured cost table."""

    fn: Callable[..., Any]
    calibration_runs: int = 3
    key_fn: Callable[[tuple, dict], Hashable] = _default_key
    _costs: dict[Hashable, float] = field(default_factory=dict)
    #: results of the calibration executions, by key (for checking outputs)
    last_result: Any = None

    @property
    def name(self) -> str:
        return getattr(self.fn, "__name__", "kernel")

    def measure(self, *args: Any, **kwargs: Any) -> float:
        """Measured wall seconds for this argument class (cached)."""
        key = self.key_fn(args, kwargs)
        cached = self._costs.get(key)
        if cached is not None:
            return cached
        if self.calibration_runs < 1:
            raise RuntimeModelError("calibration_runs must be >= 1")
        samples = []
        for _ in range(self.calibration_runs):
            start = time.perf_counter()
            self.last_result = self.fn(*args, **kwargs)
            samples.append(time.perf_counter() - start)
        cost = float(np.median(samples))
        # a zero-cost kernel breaks nothing, but keep durations positive
        cost = max(cost, 1e-9)
        self._costs[key] = cost
        return cost

    def submit(self, rt: AppRankRuntime, *args: Any,
               accesses: tuple[DataAccess, ...] = (),
               offloadable: bool = True,
               label: str = "", **kwargs: Any) -> Task:
        """Measure (once per cost class) and submit a simulator task."""
        duration = self.measure(*args, **kwargs)
        return rt.submit(work=duration, accesses=accesses,
                         offloadable=offloadable,
                         label=label or self.name)

    def known_costs(self) -> dict[Hashable, float]:
        """Measured seconds per calibrated cost class."""
        return dict(self._costs)
