"""Region-based task dependency tracking (paper §3.1/§3.2).

The registry replays OmpSs-2 semantics: accesses are registered in task
*creation order* (inherited from the sequential program), readers-after-
writer form ``in`` edges, writers-after-anything form ``out``/``inout``
edges, and a task becomes ready when its last unfinished predecessor
finishes.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import DependencyError
from .regions import IntervalMap
from .task import AccessType, Task, TaskState

__all__ = ["DependencyTracker"]


class _RegionState:
    """Per-segment dependency frontier.

    ``writers`` is the current write frontier: a single ordinary writer, or
    an open *concurrent group* (several tasks that may run simultaneously);
    ``readers`` are the in-accesses since that frontier. A ``__slots__``
    class: one is allocated per gap-fill and per segment split in the
    hottest registration path.
    """

    __slots__ = ("writers", "concurrent_group", "readers")

    def __init__(self, writers: Optional[list[Task]] = None,
                 concurrent_group: bool = False,
                 readers: Optional[list[Task]] = None) -> None:
        self.writers = writers if writers is not None else []
        #: True while ``writers`` is an open concurrent group
        self.concurrent_group = concurrent_group
        self.readers = readers if readers is not None else []

    def clone(self) -> "_RegionState":
        """Segment-split hook for :class:`IntervalMap`."""
        return _RegionState(list(self.writers), self.concurrent_group,
                            list(self.readers))


class DependencyTracker:
    """One apprank's dependency registry.

    ``on_ready`` is called (synchronously) for every task whose predecessor
    count reaches zero — at registration time for dependence-free tasks.
    """

    def __init__(self, on_ready: Callable[[Task], None],
                 record_preds: bool = False) -> None:
        self._map: IntervalMap[_RegionState] = IntervalMap()
        self._on_ready = on_ready
        self.tasks_registered = 0
        self.edges_created = 0
        #: observed runs stamp ``task.pred_ids`` for critical-path analysis
        self.record_preds = record_preds

    def register(self, task: Task) -> None:
        """Register *task*'s accesses; may immediately mark it ready."""
        if task.state != TaskState.CREATED:
            raise DependencyError(f"{task!r} registered twice")
        predecessors: set[Task] = set()
        for access in task.accesses:
            def update(state: Optional[_RegionState],
                       mode: AccessType = access.mode) -> _RegionState:
                if state is None:
                    state = _RegionState()
                if mode == AccessType.IN:
                    predecessors.update(state.writers)
                    state.readers.append(task)
                elif mode == AccessType.CONCURRENT:
                    # Ordered against readers and any ordinary writer, but
                    # joins (not replaces) an open concurrent group.
                    predecessors.update(state.readers)
                    if state.concurrent_group:
                        state.writers.append(task)
                    else:
                        predecessors.update(state.writers)
                        state.writers = [task]
                        state.concurrent_group = True
                    state.readers = []
                else:
                    # OUT / INOUT / COMMUTATIVE close any open group and
                    # become the sole write frontier. COMMUTATIVE thereby
                    # serialises with its peers in submission order — one
                    # of the orders its semantics allow.
                    predecessors.update(state.writers)
                    predecessors.update(state.readers)
                    state.writers = [task]
                    state.concurrent_group = False
                    state.readers = []
                return state

            self._map.apply(access.start, access.end, update)

        predecessors.discard(task)  # overlapping accesses within one task
        live = [p for p in predecessors if p.state != TaskState.FINISHED]
        if self.record_preds:
            task.pred_ids = tuple(sorted(p.task_id for p in live))
        task.pending_predecessors = len(live)
        for pred in live:
            pred.successors.append(task)
        self.tasks_registered += 1
        self.edges_created += len(live)
        if task.pending_predecessors == 0:
            self._make_ready(task)

    def notify_finished(self, task: Task) -> list[Task]:
        """Record *task* finished; release successors. Returns newly ready tasks."""
        if task.state != TaskState.FINISHED:
            raise DependencyError(f"notify_finished on {task!r} (not finished)")
        released = []
        for succ in task.successors:
            succ.pending_predecessors -= 1
            if succ.pending_predecessors < 0:
                raise DependencyError(f"{succ!r} predecessor count underflow")
            if succ.pending_predecessors == 0:
                released.append(succ)
        task.successors = []
        for succ in released:
            self._make_ready(succ)
        return released

    def _make_ready(self, task: Task) -> None:
        if task.state != TaskState.CREATED:
            raise DependencyError(f"{task!r} became ready twice")
        task.state = TaskState.READY
        self._on_ready(task)
