"""Simulated Nanos6 / OmpSs-2@Cluster runtime."""

from .apprank import AppRankRuntime
from .calibrate import CalibratedTask
from .config import RuntimeConfig
from .dependencies import DependencyTracker
from .locality import DataDirectory
from .nesting import BodyExecution, TaskContext
from .regions import IntervalMap, Segment
from .runtime import ClusterRuntime
from .scheduler import AppRankScheduler
from .task import AccessType, DataAccess, Task, TaskState
from .worker import Worker

__all__ = [
    "ClusterRuntime",
    "RuntimeConfig",
    "AppRankRuntime",
    "CalibratedTask",
    "AppRankScheduler",
    "Worker",
    "Task",
    "TaskState",
    "DataAccess",
    "AccessType",
    "DependencyTracker",
    "DataDirectory",
    "TaskContext",
    "BodyExecution",
    "IntervalMap",
    "Segment",
]
