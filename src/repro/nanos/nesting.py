"""Nested tasks: bodies, child domains, blocking taskwait (paper §3.1/§4).

OmpSs-2's defining extension over classic tasking is nesting — "improved
task nesting and fine-grained dependences across nesting levels". Here a
task may carry a *body*: a generator taking a :class:`TaskContext` and
yielding

* ``ctx.compute(seconds)`` — occupy the core for a stretch of work
  (scaled by the executing node's speed);
* ``ctx.taskwait()`` — wait for this task's direct children. The core is
  *released* while waiting (a Nanos6 scheduling point: other tasks run on
  it) and re-acquired afterwards, with resumption priority over fresh
  tasks.

Children are submitted through ``ctx.submit`` into a per-parent
dependency domain (sibling accesses order against each other, not against
unrelated tasks), are scheduled by the ordinary §5.5 scheduler, and may
themselves carry bodies. A non-offloadable child is pinned to its
parent's execution node ("fixed on the same node as the task's parent",
§3.2). The parent finishes after its body returns *and* all children
finished (an implicit final taskwait).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Iterable, Optional

from ..errors import RuntimeModelError, TaskError
from .dependencies import DependencyTracker
from .task import AccessType, DataAccess, Task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .worker import Worker

__all__ = ["TaskContext", "BodyExecution"]


class _Compute:
    """Yield value: occupy the core for ``seconds`` of nominal work."""

    __slots__ = ("seconds",)

    def __init__(self, seconds: float) -> None:
        if seconds < 0:
            raise TaskError(f"negative compute chunk {seconds}")
        self.seconds = seconds


class _TaskWait:
    """Yield value: wait for the task's direct children (core released)."""

    __slots__ = ()


class TaskContext:
    """The body's handle to the runtime (the OmpSs-2 pragma surface)."""

    def __init__(self, execution: "BodyExecution") -> None:
        self._execution = execution

    @property
    def task(self) -> Task:
        return self._execution.task

    @property
    def node_id(self) -> int:
        """Node the body is executing on."""
        return self._execution.worker.node_id

    @property
    def can_use_mpi(self) -> bool:
        """§4: MPI calls are valid only when the task and all its ancestors
        are non-offloadable (the task provably runs on the home node)."""
        return self._execution.task.all_ancestors_non_offloadable

    def compute(self, seconds: float) -> _Compute:
        """Yield value: occupy the core for *seconds* of nominal work."""
        return _Compute(seconds)

    def taskwait(self) -> _TaskWait:
        """Yield value: wait for direct children (the core is released)."""
        return _TaskWait()

    def submit(self, work: float, accesses: Iterable[DataAccess] = (),
               offloadable: bool = True, label: str = "",
               body=None) -> Task:
        """Submit a child task into this task's dependency domain."""
        return self._execution.submit_child(
            work=work, accesses=tuple(accesses), offloadable=offloadable,
            label=label, body=body)

    @staticmethod
    def access(mode: str, start: int, end: int) -> DataAccess:
        return DataAccess(AccessType(mode), start, end)


class BodyExecution:
    """State machine driving one nested task's body on a worker.

    States: running a compute chunk (holds the core) → waiting for
    children (core released, parked) → resumed on a granted core →
    ... → body exhausted → implicit final taskwait → finished.
    """

    def __init__(self, worker: "Worker", task: Task) -> None:
        self.worker = worker
        self.task = task
        self.sim = worker.sim
        self.context = TaskContext(self)
        self.generator: Generator[Any, Any, Any] = task.body(self.context)
        if not hasattr(self.generator, "send"):
            raise RuntimeModelError(
                f"task body {task.body!r} must be a generator function "
                "(yield ctx.compute(...) / ctx.taskwait())")
        self.core = None
        self.compute_seconds = 0.0       # realised work (for TALP/meters)
        self.children_outstanding = 0
        self._waiting_for_children = False
        self._body_done = False
        self._child_tracker: Optional[DependencyTracker] = None

    # -- child domain ------------------------------------------------------

    def submit_child(self, work: float, accesses: tuple[DataAccess, ...],
                     offloadable: bool, label: str, body) -> Task:
        """Create a child in this task's dependency domain (via ctx.submit)."""
        apprank_rt = self.worker._apprank_runtime()
        child = Task(work=work, accesses=accesses, offloadable=offloadable,
                     label=label or f"{self.task.label}.child",
                     apprank=self.task.apprank, body=body, parent=self.task)
        if not offloadable:
            # §3.2: fixed on the same node as the task's parent.
            child.pinned_node = self.worker.node_id
        if self._child_tracker is None:
            self._child_tracker = DependencyTracker(
                apprank_rt.scheduler.on_ready,
                record_preds=apprank_rt.deps.record_preds)
        self.children_outstanding += 1
        apprank_rt.register_child(child, self)
        if apprank_rt.validator is not None:
            apprank_rt.validator.task_registered(child)
        self._child_tracker.register(child)
        if apprank_rt.validator is not None:
            apprank_rt.validator.task_dependencies_known(child)
        return child

    def on_child_finished(self, child: Task) -> None:
        """Apprank callback: one of our children completed."""
        self._child_tracker.notify_finished(child)
        self.children_outstanding -= 1
        if self.children_outstanding < 0:
            raise RuntimeModelError(f"{self.task!r}: child count underflow")
        if self.children_outstanding == 0 and self._waiting_for_children:
            self._waiting_for_children = False
            self.worker._note_body_unblocked()
            if self._body_done:
                self.worker._finish_body(self)
            else:
                # Re-acquire a core with resumption priority.
                self.worker._park_for_resume(self)

    # -- driving the generator ---------------------------------------------

    def start_on(self, core) -> None:
        """First execution or resumption on a granted core."""
        self.core = core
        self._advance(None)

    def _advance(self, value: Any) -> None:
        try:
            step = self.generator.send(value)
        except StopIteration:
            self._on_body_exhausted()
            return
        if isinstance(step, _Compute):
            duration = self.worker.node.task_duration(step.seconds)
            self.compute_seconds += step.seconds
            self.sim.schedule(duration, lambda: self._advance(None),
                              label=f"body-chunk:{self.task.task_id}")
        elif isinstance(step, _TaskWait):
            self._release_core()
            if self.children_outstanding == 0:
                self.worker._park_for_resume(self)
            else:
                self._waiting_for_children = True
                self.worker._note_body_blocked()
        else:
            raise RuntimeModelError(
                f"task body yielded {step!r}; expected ctx.compute() or "
                "ctx.taskwait()")

    def _on_body_exhausted(self) -> None:
        self._body_done = True
        self._release_core()
        if self.children_outstanding == 0:
            self.worker._finish_body(self)
        else:
            self._waiting_for_children = True    # implicit final taskwait
            self.worker._note_body_blocked()

    def _release_core(self) -> None:
        if self.core is not None:
            self.worker._release_body_core(self)
            self.core = None
