"""Interval (region) algebra shared by dependency and locality tracking.

:class:`IntervalMap` maps half-open integer intervals to values, keeping a
sorted list of disjoint segments. Overlapping writes split segments at the
overlap boundaries — exactly the fragmentation behaviour region-based task
runtimes exhibit. Both the dependency registry and the data-location
directory are thin layers over this one structure, mirroring the paper's
"single mechanism of task accesses" principle.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Callable, Generic, Iterator, Optional, TypeVar

from ..errors import RuntimeModelError

__all__ = ["Segment", "IntervalMap"]

V = TypeVar("V")


class Segment(Generic[V]):
    """A maximal run ``[start, end)`` with one value.

    A ``__slots__`` class rather than a dataclass: segments are created on
    every split and gap-fill inside the dependency registry's per-access
    updates, one of the simulator's hottest allocation sites.
    """

    __slots__ = ("start", "end", "value")

    def __init__(self, start: int, end: int, value: V) -> None:
        if end <= start:
            raise RuntimeModelError(f"empty segment [{start}, {end})")
        self.start = start
        self.end = end
        self.value = value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Segment):
            return NotImplemented
        return (self.start == other.start and self.end == other.end
                and self.value == other.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Segment({self.start}, {self.end}, {self.value!r})"

    @property
    def length(self) -> int:
        return self.end - self.start


class IntervalMap(Generic[V]):
    """Sorted disjoint segments over the integers.

    Invariants (checked by :meth:`validate`, relied on everywhere):
    segments are non-empty, non-overlapping, and sorted by start.
    Adjacent segments with equal values are *not* merged automatically —
    callers that care call :meth:`coalesce` (dependency tracking must not
    merge, because per-segment reader lists differ by identity).
    """

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._segments: list[Segment[V]] = []

    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self) -> Iterator[Segment[V]]:
        return iter(self._segments)

    def segments(self) -> list[Segment[V]]:
        """Snapshot of the segments, in order."""
        return list(self._segments)

    # -- queries --------------------------------------------------------

    def overlapping(self, start: int, end: int) -> list[Segment[V]]:
        """Segments intersecting ``[start, end)``, in order."""
        if end <= start:
            raise RuntimeModelError(f"empty query [{start}, {end})")
        segments = self._segments
        n = len(segments)
        i = bisect_right(self._starts, start) - 1
        if i >= 0 and segments[i].end <= start:
            i += 1
        if i < 0:
            i = 0
        out = []
        while i < n:
            seg = segments[i]
            if seg.start >= end:
                break
            if seg.end > start:
                out.append(seg)
            i += 1
        return out

    def gaps(self, start: int, end: int) -> list[tuple[int, int]]:
        """Sub-ranges of ``[start, end)`` not covered by any segment."""
        covered = self.overlapping(start, end)
        out = []
        cursor = start
        for seg in covered:
            if seg.start > cursor:
                out.append((cursor, min(seg.start, end)))
            cursor = max(cursor, seg.end)
        if cursor < end:
            out.append((cursor, end))
        return out

    def value_at(self, point: int) -> Optional[V]:
        """Value covering *point*, or None in a gap."""
        i = bisect_right(self._starts, point) - 1
        if i >= 0 and self._segments[i].start <= point < self._segments[i].end:
            return self._segments[i].value
        return None

    # -- mutation ---------------------------------------------------------

    def _split_at(self, point: int) -> None:
        """Ensure *point* is a segment boundary (splitting if interior)."""
        i = bisect_right(self._starts, point) - 1
        if i < 0:
            return
        seg = self._segments[i]
        if seg.start < point < seg.end:
            left = Segment(seg.start, point, seg.value)
            right = Segment(point, seg.end, self._clone_value(seg.value))
            self._segments[i] = left
            self._segments.insert(i + 1, right)
            self._starts.insert(i + 1, point)

    @staticmethod
    def _clone_value(value: V) -> V:
        """Copy a value when a segment splits.

        Values with a ``clone()`` method are cloned (so mutable per-segment
        state diverges correctly); everything else is shared.
        """
        clone = getattr(value, "clone", None)
        return clone() if callable(clone) else value

    def apply(self, start: int, end: int,
              update: Callable[[Optional[V]], V]) -> list[Segment[V]]:
        """Transform the range ``[start, end)`` segment-by-segment.

        *update* receives the existing value (or None for gaps) and returns
        the new value. Returns the affected segments after the update, in
        order — the caller reads dependency info off them.
        """
        if end <= start:
            raise RuntimeModelError(f"empty update [{start}, {end})")
        # Fast path: the range coincides with one existing segment — the
        # steady state once an iterative app's access pattern has carved
        # its boundaries into the map. Both splits would no-op and the
        # scan would touch exactly this segment, so skip straight to it.
        starts = self._starts
        i = bisect_left(starts, start)
        if i < len(starts) and starts[i] == start:
            seg = self._segments[i]
            if seg.end == end:
                seg.value = update(seg.value)
                return [seg]
        self._split_at(start)
        self._split_at(end)
        # Post-split, every segment intersecting the range lies fully
        # inside it, so one scan updates existing segments and inserts
        # gap-fills in place — already in order, no sort needed.
        starts = self._starts
        segments = self._segments
        touched: list[Segment[V]] = []
        cursor = start
        i = bisect_left(starts, start)
        while i < len(segments):
            seg = segments[i]
            if seg.start >= end:
                break
            if seg.start > cursor:
                gap = Segment(cursor, seg.start, update(None))
                segments.insert(i, gap)
                starts.insert(i, cursor)
                touched.append(gap)
                i += 1
            seg.value = update(seg.value)
            touched.append(seg)
            cursor = seg.end
            i += 1
        if cursor < end:
            gap = Segment(cursor, end, update(None))
            segments.insert(i, gap)
            starts.insert(i, cursor)
            touched.append(gap)
        return touched

    def set_range(self, start: int, end: int, value: V) -> None:
        """Assign *value* over ``[start, end)`` (overwrites, keeps splits)."""
        self.apply(start, end, lambda _old: value)

    def coalesce(self, equal: Callable[[V, V], bool] = lambda a, b: a == b) -> None:
        """Merge adjacent segments whose values compare equal."""
        if not self._segments:
            return
        merged = [self._segments[0]]
        for seg in self._segments[1:]:
            last = merged[-1]
            if last.end == seg.start and equal(last.value, seg.value):
                last.end = seg.end
            else:
                merged.append(seg)
        self._segments = merged
        self._starts = [s.start for s in merged]

    def validate(self) -> None:
        """Check structural invariants; raises on violation (tests use this)."""
        prev_end = None
        for i, seg in enumerate(self._segments):
            if seg.end <= seg.start:
                raise RuntimeModelError(f"segment {i} empty")
            if self._starts[i] != seg.start:
                raise RuntimeModelError(f"starts index desynced at {i}")
            if prev_end is not None and seg.start < prev_end:
                raise RuntimeModelError(f"segments overlap at index {i}")
            prev_end = seg.end

    def total_covered(self) -> int:
        """Total length covered by segments."""
        return sum(seg.length for seg in self._segments)
