"""Per-apprank task scheduler: §5.5 mechanism behind a pluggable policy.

The scheduler owns the *mechanism*: the spill queue, dispatch/ack/resend
machinery, data movement and bookkeeping. *Where* a ready task runs is
delegated to an :class:`~repro.policies.OffloadPolicy` (selected by
``RuntimeConfig.offload_policy``, default ``"tentative"`` — the paper's
§5.5 rule) consulted through immutable snapshot views:

1. the policy sees each adjacent node's liveness, owned cores, active
   tasks and resident input bytes, and answers with a node, ``KEEP``
   (home) or ``QUEUE`` (spill);
2. spilled tasks are retried in the policy's ``drain_order`` as tasks
   complete or ownership changes;
3. a worker that runs dry *steals* the next queued task regardless of
   any threshold (mechanism, not policy — §5.5's "stolen as tasks
   complete" is what keeps LeWI-borrowed cores fed).

Offloading is final: once assigned, a task is never migrated.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from ..cluster.network import NetworkModel
from ..errors import PolicyError, SchedulerError, TaskLostError
from ..policies import (KEEP, OFFLOAD_POLICIES, QUEUE, NodeView,
                        OffloadPolicy, SchedulerView, TaskView)
from ..policies.offload import TentativeImmediateOffload
from ..sim.engine import Simulator
from .locality import DataDirectory
from .task import Task, TaskState
from .worker import Worker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.injector import FaultInjector
    from ..obs import Observability
    from ..sim.events import Event
    from ..validate import Sanitizer
    from .config import RuntimeConfig

__all__ = ["AppRankScheduler"]


class _OffloadDispatch:
    """One in-flight remote dispatch (all bookkeeping lives here, so the
    fault-free and resilient paths share a single dispatch mechanism)."""

    __slots__ = ("task", "worker", "attempt", "acked", "timer", "delivery",
                 "ack", "sent_at", "first_sent")

    def __init__(self, task: Task, worker: Worker) -> None:
        self.task = task
        self.worker = worker
        self.attempt = 0
        self.acked = False
        self.timer: Optional["Event"] = None
        self.delivery: Optional["Event"] = None
        self.ack: Optional["Event"] = None
        #: simulated time of the latest / first (re-)send, for obs spans
        self.sent_at = 0.0
        self.first_sent = 0.0


class AppRankScheduler:
    """Placement mechanism for one apprank's ready tasks."""

    def __init__(self, sim: Simulator, apprank: int, home_node: int,
                 workers: dict[int, Worker], directory: DataDirectory,
                 network: NetworkModel, config: "RuntimeConfig",
                 obs: Optional["Observability"] = None,
                 policy: Optional[OffloadPolicy] = None,
                 validator: Optional["Sanitizer"] = None) -> None:
        self.sim = sim
        self.apprank = apprank
        self.home_node = home_node
        self.workers = workers            # node_id -> Worker (graph-adjacent)
        self.directory = directory
        self.network = network
        self.config = config
        self.obs = obs
        self.validator = validator
        #: the pure placement strategy (from the registry unless injected)
        self.policy: OffloadPolicy = (
            policy if policy is not None
            else OFFLOAD_POLICIES.create(config.offload_policy))
        self.queue: deque[Task] = deque()
        self.tasks_offloaded = 0
        self.tasks_kept_home = 0
        self._draining = False
        #: set by :class:`repro.faults.FaultInjector`; when present, remote
        #: dispatches use the acknowledged (timeout + backoff) protocol
        self.faults: Optional["FaultInjector"] = None
        self._dispatches: dict[Task, _OffloadDispatch] = {}
        self.offload_resends = 0
        #: cached placement order for input-less tasks (invalidated when
        #: the worker set changes); see :meth:`_no_input_order`
        self._zero_order: Optional[tuple] = None

    # -- entry points -------------------------------------------------------

    def on_ready(self, task: Task) -> None:
        """Dependency system callback: *task* is now satisfiable."""
        perf = self.sim.perf
        if perf is None:
            self._on_ready(task)
            return
        perf.begin("nanos.scheduler")
        try:
            self._on_ready(task)
        finally:
            perf.end()

    def _on_ready(self, task: Task) -> None:
        if self.obs is not None:
            task.ready_time = self.sim.now
        if task.pinned_node is not None:
            # §3.2: non-offloadable children are fixed on the same node as
            # their parent, wherever the parent happened to execute.
            self._assign(task, task.pinned_node)
            return
        if not task.offloadable:
            # Non-offloadable tasks are pinned to the home node regardless
            # of its load (the §4 contract for MPI-calling tasks).
            self._assign(task, self.home_node)
            return
        node = self._place(task)
        if node is None:
            self.queue.append(task)
            if self.obs is not None:
                self.obs.queue_depth(self.apprank, self.home_node,
                                     len(self.queue))
        else:
            self._assign(task, node)

    def drain(self) -> None:
        """Retry spilled tasks (§5.5 "stolen as tasks complete").

        Tasks are attempted in the policy's
        :meth:`~repro.policies.OffloadPolicy.drain_order`; the drain
        stops at the first ``QUEUE`` decision (with the default FIFO
        order this is exactly the seed's head-of-queue drain).
        """
        if self._draining or not self.queue:
            return
        self._draining = True
        perf = self.sim.perf
        if perf is not None:
            perf.begin("nanos.scheduler")
        try:
            self._drain_once()
        finally:
            self._draining = False
            if perf is not None:
                perf.end()

    def _drain_once(self) -> None:
        items = list(self.queue)
        if type(self.policy).drain_order is OffloadPolicy.drain_order:
            # The base-class order is the identity (FIFO): skip building
            # the task/scheduler views the policy would ignore. The call
            # still lands in the deterministic perf call counts.
            perf = self.sim.perf
            if perf is not None:
                perf.count("policies")
            order = range(len(items))
        else:
            task_views = tuple(self._task_view(t) for t in items)
            perf = self.sim.perf
            if perf is not None:
                perf.begin("policies")
            try:
                order = list(self.policy.drain_order(task_views,
                                                     self.scheduler_view(None)))
            finally:
                if perf is not None:
                    perf.end()
            if sorted(order) != list(range(len(items))):
                raise PolicyError(
                    f"{self.policy.name!r}.drain_order returned {order!r}, not "
                    f"a permutation of range({len(items)})")
        for position in order:
            task = items[position]
            if task not in self.queue:
                # A zero-delay assignment above can complete synchronously
                # and steal (or place) later snapshot entries re-entrantly;
                # anything no longer queued has already been handled.
                continue
            node = self._place(task, drained=True)
            if node is None:
                break
            self.queue.remove(task)
            self._assign(task, node)
            if self.obs is not None:
                self.obs.queue_depth(self.apprank, self.home_node,
                                     len(self.queue))

    def steal_for(self, worker: Worker) -> bool:
        """§5.5: queued tasks "will be stolen as tasks complete".

        Called by a worker at a task completion when it has nothing ready:
        it pulls the next queued task to itself *regardless* of the
        placement policy. This is mechanism, deliberately outside the
        policy: the submission-time decision ignores LeWI-borrowed cores
        (they may vanish, §5.5), but a core that just finished a task
        here is demonstrably available right now.
        """
        if not self.queue:
            return False
        perf = self.sim.perf
        if perf is not None:
            perf.begin("nanos.scheduler")
        try:
            if self.obs is not None:
                self.obs.policy_decision(self.policy.name, "stolen")
            self._assign(self.queue.popleft(), worker.node_id)
            if self.obs is not None:
                self.obs.queue_depth(self.apprank, self.home_node,
                                     len(self.queue))
        finally:
            if perf is not None:
                perf.end()
        return True

    @property
    def queued(self) -> int:
        """Tasks waiting in the spill queue."""
        return len(self.queue)

    # -- policy consultation -------------------------------------------------

    def scheduler_view(self, task: Optional[Task]) -> SchedulerView:
        """Immutable placement snapshot for one decision.

        With *task*, each node view carries the bytes of the task's
        inputs resident there; without, byte counts are zero (the
        task-agnostic view handed to ``drain_order``).
        """
        inputs = task.inputs if task is not None else ()
        present = (self.directory.present_bytes_for(inputs, self.workers.keys())
                   if inputs else None)
        nodes = []
        for node_id, worker in self.workers.items():
            nodes.append(NodeView(
                node_id=node_id,
                alive=worker.alive,
                owned_cores=worker.arbiter.owned_count(worker.key),
                active_tasks=worker.assigned - worker.blocked_bodies,
                bytes_present=present[node_id] if present is not None else 0))
        return SchedulerView(apprank=self.apprank, home_node=self.home_node,
                             tasks_per_core=self.config.tasks_per_core,
                             nodes=tuple(nodes))

    @staticmethod
    def _task_view(task: Task) -> TaskView:
        return TaskView(task_id=task.task_id, input_bytes=task.input_bytes)

    def _place(self, task: Task, drained: bool = False) -> Optional[int]:
        """Ask the policy; validate; return a node id or None (= spill)."""
        if (self.obs is None and self.validator is None
                and type(self.policy) is TentativeImmediateOffload):
            return self._place_fast(task)
        view = self.scheduler_view(task)
        perf = self.sim.perf
        if perf is not None:
            perf.begin("policies")
        try:
            decision = self.policy.choose_worker(self._task_view(task), view)
        finally:
            if perf is not None:
                perf.end()
        if decision is QUEUE:
            if self.obs is not None and not drained:
                self.obs.policy_decision(self.policy.name, "queue")
            return None
        node_id = self.home_node if decision is KEEP else decision
        if not isinstance(node_id, int) or node_id not in self.workers:
            raise PolicyError(
                f"policy {self.policy.name!r} chose {decision!r}, not an "
                f"adjacent node of apprank {self.apprank}")
        if not self.workers[node_id].alive:
            raise PolicyError(
                f"policy {self.policy.name!r} chose dead node {node_id} "
                f"for {task!r}")
        if self.validator is not None:
            chosen = next(nv for nv in view.nodes if nv.node_id == node_id)
            self.validator.placement_decided(task, chosen,
                                             view.tasks_per_core,
                                             self.policy.name)
        if self.obs is not None:
            outcome = "keep" if node_id == self.home_node else "offload"
            self.obs.policy_decision(
                self.policy.name, f"drained-{outcome}" if drained else outcome)
        return node_id

    def _place_fast(self, task: Task) -> Optional[int]:
        """Inlined §5.5 tentative placement (the default policy).

        Semantically identical to routing through
        :class:`~repro.policies.offload.TentativeImmediateOffload` over a
        :meth:`scheduler_view` snapshot — same locality order, same load
        bound, same tie-breaks — but without constructing the per-decision
        view dataclasses. Only taken when no observer or validator needs
        the snapshot; the decision still lands in the perf call counts.
        """
        perf = self.sim.perf
        if perf is not None:
            perf.count("policies")
        workers = self.workers
        inputs = task.inputs
        if inputs:
            # The locality order only changes when the directory or the
            # worker set does; spilled tasks are re-placed on every task
            # completion, so cache the sorted order per task and key it on
            # both (node ids only — workers are re-fetched at use time, so
            # a replaced worker object can never be served stale).
            keys = tuple(workers)
            version = self.directory.version
            cached = task._place_cache
            if (cached is not None and cached[0] == version
                    and cached[1] == keys):
                order = cached[2]
            else:
                home = self.home_node
                present = self.directory.present_bytes_for(inputs, keys)
                order = sorted([(-present[node_id], node_id != home, node_id)
                                for node_id in keys])
                task._place_cache = (version, keys, order)
        else:
            order = self._no_input_order()
        tasks_per_core = self.config.tasks_per_core
        for _neg_bytes, _away, node_id in order:
            worker = workers[node_id]
            if not worker.alive:
                continue
            # arbiter.owned_count inlined to its dict read: this loop runs
            # per candidate node per placement, the hottest query in the
            # scheduler (owned_counts is maintained by Core ownership moves).
            owned = worker.arbiter.node.cols.owned_counts.get(worker.key, 0)
            active = worker.assigned - worker.blocked_bodies
            if active / (owned if owned > 0 else 1) < tasks_per_core:
                return node_id
        return None

    def _no_input_order(self) -> list[tuple[int, bool, int]]:
        """Placement order for input-less tasks (all locality scores 0)."""
        cached = self._zero_order
        keys = tuple(self.workers)
        if cached is None or cached[0] != keys:
            home = self.home_node
            order = sorted((0, node_id != home, node_id) for node_id in keys)
            self._zero_order = cached = (keys, order)
        return cached[1]

    # -- binding and data movement -------------------------------------------

    def _assign(self, task: Task, node_id: int) -> None:
        if task.state not in (TaskState.READY, TaskState.CREATED):
            raise SchedulerError(f"assigning {task!r} in state {task.state}")
        worker = self.workers[node_id]
        task.state = TaskState.ASSIGNED
        task.assigned_node = node_id
        worker.notify_assigned()
        if node_id == self.home_node:
            self.tasks_kept_home += 1
        else:
            self.tasks_offloaded += 1
        if node_id != self.home_node:
            # Every remote send goes through one dispatch record; with a
            # fault model the control message may be lost, so the dispatch
            # is additionally tracked, acknowledged and re-sent on timeout.
            dispatch = _OffloadDispatch(task, worker)
            if self.faults is not None:
                task.state = TaskState.TRANSFERRING
                self._dispatches[task] = dispatch
            self._send(dispatch)
            return
        # Home placement: no control message, so the dispatch delay is
        # purely the eager pull of remotely-written inputs. The steady
        # local case (``missing == 0``) hands off synchronously — no
        # other directory mutation can interleave — which makes the
        # delivery-time ``record_copy_in`` a provable no-op: skip it and
        # the second region walk it would cost.
        missing = self.directory.bytes_missing_at(task.inputs, node_id)
        if missing == 0:
            worker.enqueue(task)
            return
        delay = self.network.transfer_time(missing)
        if delay <= 0.0:
            self._deliver(task, worker, None)
        else:
            task.state = TaskState.TRANSFERRING
            sim = self.sim
            sim.schedule(delay,
                         lambda: self._deliver(task, worker, None),
                         label=(f"task-dispatch:{task.task_id}"
                                if sim.labels else ""))

    def _dispatch_delay(self, task: Task, node_id: int) -> float:
        """Offload control message plus eager input copies (§3.2)."""
        delay = 0.0
        if node_id != self.home_node:
            delay += self.network.control_message_time()
        missing = self.directory.bytes_missing_at(task.inputs, node_id)
        if missing > 0:
            delay += self.network.transfer_time(missing)
        return delay

    def _deliver(self, task: Task, worker: Worker,
                 sent_at: Optional[float] = None) -> None:
        if self.obs is not None and sent_at is not None:
            self.obs.offload_dispatched(task, self.home_node, worker.node_id,
                                        start=sent_at)
        self.directory.record_copy_in(task.inputs, worker.node_id)
        worker.enqueue(task)

    # -- the shared remote-dispatch path ------------------------------------

    def _send(self, dispatch: _OffloadDispatch) -> None:
        """(Re-)send one remote dispatch.

        The send/first-send timestamps and attempt counter live on the
        dispatch record for both modes. Without a fault model the send is
        reliable: one delivery, no acknowledgement traffic. With one,
        each attempt draws send/ack loss from the fault model's dedicated
        RNG stream, the acknowledgement timer backs off exponentially,
        and past ``max_retries`` re-sends the task is declared lost.
        """
        task = dispatch.task
        dispatch.attempt += 1
        if dispatch.attempt > self.config.max_retries + 1:
            del self._dispatches[task]
            raise TaskLostError(
                f"offload of {task!r} to node {task.assigned_node} went "
                f"unacknowledged {self.config.max_retries + 1} times",
                task=task)
        dispatch.sent_at = self.sim.now
        if dispatch.attempt == 1:
            dispatch.first_sent = self.sim.now
        else:
            self.offload_resends += 1
            if self.obs is not None:
                self.obs.offload_resent(task, dispatch.attempt)
        delay = self._dispatch_delay(task, task.assigned_node)
        if self.faults is None:
            sent_at = dispatch.sent_at
            if delay <= 0.0:
                self._deliver(task, dispatch.worker, sent_at)
            else:
                task.state = TaskState.TRANSFERRING
                sim = self.sim
                dispatch.delivery = sim.schedule(
                    delay,
                    lambda: self._deliver(task, dispatch.worker, sent_at),
                    label=(f"task-dispatch:{task.task_id}"
                           if sim.labels else ""))
            return
        send_lost = self.faults.offload_send_lost()
        ack_lost = self.faults.offload_ack_lost()
        ack_rtt = delay + self.network.control_message_time()
        if not send_lost:
            dispatch.delivery = self.sim.schedule(
                delay, lambda: self._offload_deliver(dispatch),
                label=f"offload-send:{task.task_id}")
            if not ack_lost:
                dispatch.ack = self.sim.schedule(
                    ack_rtt, lambda: self._offload_acked(dispatch),
                    label=f"offload-ack:{task.task_id}")
        # Never time out before a healthy round trip could complete: the
        # ack (scheduled first) wins a same-time tie against the timer.
        timeout = (max(self.config.offload_ack_timeout, ack_rtt)
                   * self.config.offload_backoff ** (dispatch.attempt - 1))
        dispatch.timer = self.sim.schedule(
            timeout, lambda: self._offload_timeout(dispatch),
            label=f"offload-timer:{task.task_id}")

    def _offload_deliver(self, dispatch: _OffloadDispatch) -> None:
        dispatch.delivery = None
        task = dispatch.task
        if task.state is not TaskState.TRANSFERRING:
            return      # duplicate: an earlier attempt already arrived
        if not dispatch.worker.alive:
            return      # worker crashed; crash recovery re-places the task
        self._deliver(task, dispatch.worker, dispatch.sent_at)

    def _offload_acked(self, dispatch: _OffloadDispatch) -> None:
        dispatch.ack = None
        if self._dispatches.get(dispatch.task) is not dispatch:
            return      # superseded (task recovered and re-dispatched)
        dispatch.acked = True
        if self.obs is not None:
            self.obs.offload_acked(dispatch.task,
                                   rtt=self.sim.now - dispatch.first_sent,
                                   attempts=dispatch.attempt)
        if dispatch.timer is not None:
            self.sim.cancel(dispatch.timer)
            dispatch.timer = None
        del self._dispatches[dispatch.task]

    def _offload_timeout(self, dispatch: _OffloadDispatch) -> None:
        dispatch.timer = None
        if dispatch.acked or self._dispatches.get(dispatch.task) is not dispatch:
            return
        if dispatch.task.state is not TaskState.TRANSFERRING:
            # The worker demonstrably received the dispatch (the task
            # started or even finished there): its later protocol traffic
            # implicitly acks the offload, so only the explicit ack was
            # lost — stop re-sending instead of counting down to a bogus
            # TaskLostError for a task that is executing.
            del self._dispatches[dispatch.task]
            return
        self._send(dispatch)

    def recover_dispatches(self, node_id: int) -> list[Task]:
        """Crash recovery: cancel in-flight offloads to a dead node.

        Returns the tasks still in flight (state ``TRANSFERRING``) so the
        runtime can re-place them; tasks that already arrived are returned
        by ``Worker.kill`` instead, never by both paths.
        """
        lost: list[Task] = []
        for task, dispatch in list(self._dispatches.items()):
            if task.assigned_node != node_id:
                continue
            for event in (dispatch.timer, dispatch.delivery, dispatch.ack):
                if event is not None:
                    self.sim.cancel(event)
            del self._dispatches[task]
            if task.state is TaskState.TRANSFERRING:
                lost.append(task)
        return lost
