"""Per-apprank task scheduler implementing the §5.5 policy.

When a task becomes ready the scheduler makes a *tentative* decision
immediately:

1. the locality-best adjacent node takes it if it holds fewer than
   ``tasks_per_core`` (default two) unfinished tasks per **owned** core —
   LeWI-borrowed cores are deliberately not counted, because borrowed cores
   can be reclaimed at any moment while lent ones can be taken back;
2. otherwise any adjacent node under the threshold takes it;
3. otherwise it waits in a queue and is drained ("stolen") as tasks
   complete or ownership changes.

Offloading is final: once assigned, a task is never migrated.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from ..cluster.network import NetworkModel
from ..errors import SchedulerError, TaskLostError
from ..sim.engine import Simulator
from .locality import DataDirectory
from .task import Task, TaskState
from .worker import Worker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.injector import FaultInjector
    from ..obs import Observability
    from ..sim.events import Event
    from .config import RuntimeConfig

__all__ = ["AppRankScheduler"]


class _OffloadDispatch:
    """One in-flight offload awaiting acknowledgement (fault runs only)."""

    __slots__ = ("task", "worker", "attempt", "acked", "timer", "delivery",
                 "ack", "sent_at", "first_sent")

    def __init__(self, task: Task, worker: Worker) -> None:
        self.task = task
        self.worker = worker
        self.attempt = 0
        self.acked = False
        self.timer: Optional["Event"] = None
        self.delivery: Optional["Event"] = None
        self.ack: Optional["Event"] = None
        #: simulated time of the latest / first (re-)send, for obs spans
        self.sent_at = 0.0
        self.first_sent = 0.0


class AppRankScheduler:
    """Tentative-immediate scheduler for one apprank's ready tasks."""

    def __init__(self, sim: Simulator, apprank: int, home_node: int,
                 workers: dict[int, Worker], directory: DataDirectory,
                 network: NetworkModel, config: "RuntimeConfig",
                 obs: Optional["Observability"] = None) -> None:
        self.sim = sim
        self.apprank = apprank
        self.home_node = home_node
        self.workers = workers            # node_id -> Worker (graph-adjacent)
        self.directory = directory
        self.network = network
        self.config = config
        self.obs = obs
        self.queue: deque[Task] = deque()
        self.tasks_offloaded = 0
        self.tasks_kept_home = 0
        self._draining = False
        #: set by :class:`repro.faults.FaultInjector`; when present, remote
        #: dispatches use the acknowledged (timeout + backoff) protocol
        self.faults: Optional["FaultInjector"] = None
        self._dispatches: dict[Task, _OffloadDispatch] = {}
        self.offload_resends = 0

    # -- entry points -------------------------------------------------------

    def on_ready(self, task: Task) -> None:
        """Dependency system callback: *task* is now satisfiable."""
        if self.obs is not None:
            task.ready_time = self.sim.now
        if task.pinned_node is not None:
            # §3.2: non-offloadable children are fixed on the same node as
            # their parent, wherever the parent happened to execute.
            self._assign(task, task.pinned_node)
            return
        if not task.offloadable:
            # Non-offloadable tasks are pinned to the home node regardless
            # of its load (the §4 contract for MPI-calling tasks).
            self._assign(task, self.home_node)
            return
        node = self._pick_node(task)
        if node is None:
            self.queue.append(task)
            if self.obs is not None:
                self.obs.queue_depth(self.apprank, self.home_node,
                                     len(self.queue))
        else:
            self._assign(task, node)

    def drain(self) -> None:
        """Re-run placement for queued tasks (§5.5 "stolen as tasks complete")."""
        if self._draining:
            return
        self._draining = True
        try:
            while self.queue:
                node = self._pick_node(self.queue[0])
                if node is None:
                    break
                self._assign(self.queue.popleft(), node)
                if self.obs is not None:
                    self.obs.queue_depth(self.apprank, self.home_node,
                                         len(self.queue))
        finally:
            self._draining = False

    def steal_for(self, worker: Worker) -> bool:
        """§5.5: queued tasks "will be stolen as tasks complete".

        Called by a worker at a task completion when it has nothing ready:
        it pulls the next queued task to itself *regardless* of the
        two-per-owned-core threshold. This is what keeps LeWI-borrowed
        cores fed — the submission-time threshold deliberately ignores
        borrowed cores (they may vanish, §5.5), but a core that just
        finished a task here is demonstrably available right now.
        """
        if not self.queue:
            return False
        self._assign(self.queue.popleft(), worker.node_id)
        if self.obs is not None:
            self.obs.queue_depth(self.apprank, self.home_node,
                                 len(self.queue))
        return True

    @property
    def queued(self) -> int:
        """Tasks waiting in the spill queue."""
        return len(self.queue)

    # -- the §5.5 decision ---------------------------------------------------

    def load_ratio(self, node_id: int) -> float:
        """Unfinished tasks per owned core at our worker on *node_id*.

        Bodies blocked in taskwait are excluded: they occupy no core while
        waiting and counting them would starve their own children.
        """
        worker = self.workers[node_id]
        owned = worker.arbiter.owned_count(worker.key)
        active = worker.assigned - worker.blocked_bodies
        return active / max(owned, 1)

    def _pick_node(self, task: Task) -> Optional[int]:
        threshold = self.config.tasks_per_core
        candidates = self._by_locality(task)
        for node_id in candidates:
            if not self.workers[node_id].alive:
                continue        # crashed worker not yet unregistered
            if self.load_ratio(node_id) < threshold:
                return node_id
        return None

    def _by_locality(self, task: Task) -> list[int]:
        """Adjacent nodes ordered best-locality-first (home wins ties)."""
        nodes = list(self.workers.keys())
        if len(nodes) == 1:
            return nodes
        if not task.inputs:
            # No data: home first, then helpers in node order.
            nodes.sort(key=lambda n: (n != self.home_node, n))
            return nodes
        scores = {n: self.directory.bytes_present_at(task.inputs, n)
                  for n in nodes}
        nodes.sort(key=lambda n: (-scores[n], n != self.home_node, n))
        return nodes

    # -- binding and data movement -------------------------------------------

    def _assign(self, task: Task, node_id: int) -> None:
        if task.state not in (TaskState.READY, TaskState.CREATED):
            raise SchedulerError(f"assigning {task!r} in state {task.state}")
        worker = self.workers[node_id]
        task.state = TaskState.ASSIGNED
        task.assigned_node = node_id
        worker.notify_assigned()
        if node_id == self.home_node:
            self.tasks_kept_home += 1
        else:
            self.tasks_offloaded += 1
        if self.faults is not None and node_id != self.home_node:
            # Resilient path: the offload control message may be lost, so
            # the dispatch is acknowledged and re-sent on timeout.
            task.state = TaskState.TRANSFERRING
            dispatch = _OffloadDispatch(task, worker)
            self._dispatches[task] = dispatch
            self._send(dispatch)
            return
        sent_at = self.sim.now if node_id != self.home_node else None
        delay = self._dispatch_delay(task, node_id)
        if delay <= 0.0:
            self._deliver(task, worker, sent_at)
        else:
            task.state = TaskState.TRANSFERRING
            self.sim.schedule(delay,
                              lambda: self._deliver(task, worker, sent_at),
                              label=f"task-dispatch:{task.task_id}")

    def _dispatch_delay(self, task: Task, node_id: int) -> float:
        """Offload control message plus eager input copies (§3.2)."""
        delay = 0.0
        if node_id != self.home_node:
            delay += self.network.control_message_time()
        missing = self.directory.bytes_missing_at(task.inputs, node_id)
        if missing > 0:
            delay += self.network.transfer_time(missing)
        return delay

    def _deliver(self, task: Task, worker: Worker,
                 sent_at: Optional[float] = None) -> None:
        if self.obs is not None and sent_at is not None:
            self.obs.offload_dispatched(task, self.home_node, worker.node_id,
                                        start=sent_at)
        self.directory.record_copy_in(task.inputs, worker.node_id)
        worker.enqueue(task)

    # -- resilient offload (fault runs only) -------------------------------

    def _send(self, dispatch: _OffloadDispatch) -> None:
        """(Re-)send one offload; arm the acknowledgement timer.

        Each attempt draws send/ack loss from the fault model's dedicated
        RNG stream. The timer backs off exponentially; past
        ``max_retries`` re-sends the task is declared lost.
        """
        task = dispatch.task
        dispatch.attempt += 1
        if dispatch.attempt > self.config.max_retries + 1:
            del self._dispatches[task]
            raise TaskLostError(
                f"offload of {task!r} to node {task.assigned_node} went "
                f"unacknowledged {self.config.max_retries + 1} times",
                task=task)
        dispatch.sent_at = self.sim.now
        if dispatch.attempt == 1:
            dispatch.first_sent = self.sim.now
        else:
            self.offload_resends += 1
            if self.obs is not None:
                self.obs.offload_resent(task, dispatch.attempt)
        send_lost = self.faults.offload_send_lost()
        ack_lost = self.faults.offload_ack_lost()
        delay = self._dispatch_delay(task, task.assigned_node)
        ack_rtt = delay + self.network.control_message_time()
        if not send_lost:
            dispatch.delivery = self.sim.schedule(
                delay, lambda: self._offload_deliver(dispatch),
                label=f"offload-send:{task.task_id}")
            if not ack_lost:
                dispatch.ack = self.sim.schedule(
                    ack_rtt, lambda: self._offload_acked(dispatch),
                    label=f"offload-ack:{task.task_id}")
        # Never time out before a healthy round trip could complete: the
        # ack (scheduled first) wins a same-time tie against the timer.
        timeout = (max(self.config.offload_ack_timeout, ack_rtt)
                   * self.config.offload_backoff ** (dispatch.attempt - 1))
        dispatch.timer = self.sim.schedule(
            timeout, lambda: self._offload_timeout(dispatch),
            label=f"offload-timer:{task.task_id}")

    def _offload_deliver(self, dispatch: _OffloadDispatch) -> None:
        dispatch.delivery = None
        task = dispatch.task
        if task.state is not TaskState.TRANSFERRING:
            return      # duplicate: an earlier attempt already arrived
        if not dispatch.worker.alive:
            return      # worker crashed; crash recovery re-places the task
        self._deliver(task, dispatch.worker, dispatch.sent_at)

    def _offload_acked(self, dispatch: _OffloadDispatch) -> None:
        dispatch.ack = None
        if self._dispatches.get(dispatch.task) is not dispatch:
            return      # superseded (task recovered and re-dispatched)
        dispatch.acked = True
        if self.obs is not None:
            self.obs.offload_acked(dispatch.task,
                                   rtt=self.sim.now - dispatch.first_sent,
                                   attempts=dispatch.attempt)
        if dispatch.timer is not None:
            self.sim.cancel(dispatch.timer)
            dispatch.timer = None
        del self._dispatches[dispatch.task]

    def _offload_timeout(self, dispatch: _OffloadDispatch) -> None:
        dispatch.timer = None
        if dispatch.acked or self._dispatches.get(dispatch.task) is not dispatch:
            return
        if dispatch.task.state is not TaskState.TRANSFERRING:
            # The worker demonstrably received the dispatch (the task
            # started or even finished there): its later protocol traffic
            # implicitly acks the offload, so only the explicit ack was
            # lost — stop re-sending instead of counting down to a bogus
            # TaskLostError for a task that is executing.
            del self._dispatches[dispatch.task]
            return
        self._send(dispatch)

    def recover_dispatches(self, node_id: int) -> list[Task]:
        """Crash recovery: cancel in-flight offloads to a dead node.

        Returns the tasks still in flight (state ``TRANSFERRING``) so the
        runtime can re-place them; tasks that already arrived are returned
        by ``Worker.kill`` instead, never by both paths.
        """
        lost: list[Task] = []
        for task, dispatch in list(self._dispatches.items()):
            if task.assigned_node != node_id:
                continue
            for event in (dispatch.timer, dispatch.delivery, dispatch.ack):
                if event is not None:
                    self.sim.cancel(event)
            del self._dispatches[task]
            if task.state is TaskState.TRANSFERRING:
                lost.append(task)
        return lost
