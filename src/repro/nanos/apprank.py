"""Apprank-level runtime: submission, dependency release, taskwait (§4/§5).

One :class:`AppRankRuntime` per application rank glues together the
dependency tracker (task ordering inherited from sequential order), the
scheduler, and the apprank's workers on its graph-adjacent nodes. The
application main interacts only with :meth:`submit` and :meth:`taskwait`,
mirroring the OmpSs-2 programmer's model.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Any, Generator, Iterable, Optional

from ..cluster.network import NetworkModel
from ..errors import RuntimeModelError
from ..sim.engine import Simulator, Timeout
from ..sim.primitives import Signal
from .config import RuntimeConfig
from .dependencies import DependencyTracker
from .locality import DataDirectory
from .scheduler import AppRankScheduler
from .task import AccessType, DataAccess, Task, TaskState
from .worker import Worker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import Observability
    from ..validate import Sanitizer

__all__ = ["AppRankRuntime"]


class AppRankRuntime:
    """The Nanos6 instance cluster for one apprank (main + helpers)."""

    def __init__(self, sim: Simulator, apprank: int, home_node: int,
                 workers: dict[int, Worker], network: NetworkModel,
                 config: RuntimeConfig,
                 obs: Optional["Observability"] = None,
                 validator: Optional["Sanitizer"] = None) -> None:
        self.sim = sim
        self.apprank = apprank
        self.home_node = home_node
        self.workers = workers
        self.network = network
        self.config = config
        self.obs = obs
        self.validator = validator
        self.directory = DataDirectory(home_node)
        self.scheduler = AppRankScheduler(
            sim, apprank, home_node, workers, self.directory, network, config,
            obs=obs, validator=validator)
        self.deps = DependencyTracker(
            self.scheduler.on_ready,
            record_preds=obs is not None or validator is not None)
        self.outstanding = 0
        self.tasks_submitted = 0
        self._taskwait_signal: Optional[Signal] = None
        #: child task -> the BodyExecution that submitted it (nesting)
        self._child_exec: dict[Task, object] = {}

    # -- programmer's model -------------------------------------------------

    def submit(self, work: float, accesses: Iterable[DataAccess] = (),
               offloadable: bool = True, label: str = "",
               body=None) -> Task:
        """Create and register one task (the ``#pragma oss task`` analogue).

        Returns the task; it becomes ready as soon as its region
        dependencies allow and is then scheduled per §5.5. Pass *body* (a
        generator function taking a :class:`~repro.nanos.nesting.TaskContext`)
        to create a nested task that submits children of its own.
        """
        task = Task(work=work, accesses=tuple(accesses),
                    offloadable=offloadable, label=label,
                    apprank=self.apprank, body=body)
        return self.submit_task(task)

    def register_child(self, child: Task, execution) -> None:
        """Nesting hook: a body submitted *child* into its own domain.

        Children do not count toward the apprank-level taskwait — their
        parent only finishes after its implicit final taskwait, so waiting
        for the parents transitively waits for every descendant.
        """
        self._child_exec[child] = execution
        self.tasks_submitted += 1

    def submit_task(self, task: Task) -> Task:
        """Register an already-constructed task (see :meth:`submit`)."""
        if task.state != TaskState.CREATED:
            raise RuntimeModelError(f"{task!r} already submitted")
        task.apprank = self.apprank
        self.outstanding += 1
        self.tasks_submitted += 1
        if self.validator is not None:
            self.validator.task_registered(task)
        self.deps.register(task)
        if self.validator is not None:
            self.validator.task_dependencies_known(task)
        return task

    def taskwait(self) -> Generator[Any, Any, None]:
        """Wait until every submitted task finished (``#pragma oss taskwait``).

        Includes the write-back of remotely written data to the home node
        when the configuration asks for it — the cost that makes gratuitous
        offloading visible.
        """
        if self._taskwait_signal is not None:
            raise RuntimeModelError(
                f"apprank {self.apprank}: concurrent taskwaits")
        if self.outstanding > 0:
            signal = Signal(self.sim, name=f"taskwait-a{self.apprank}")
            self._taskwait_signal = signal
            yield signal
        if self.config.taskwait_writeback:
            missing = self.directory.bytes_missing_home()
            if missing > 0:
                yield Timeout(self.network.transfer_time(missing))
                self.directory.record_pull_home()
        return None

    # -- convenience for applications ----------------------------------------

    @staticmethod
    def access(mode: str, start: int, end: int) -> DataAccess:
        """Shorthand: ``access("inout", lo, hi)``."""
        return DataAccess(AccessType(mode), start, end)

    # -- completion path -------------------------------------------------

    def on_task_finished(self, task: Task, worker: Worker) -> None:
        """Worker callback at the execution site.

        Output regions become valid (only) where they were produced; the
        completion notice travels back to the home node's dependency graph
        with one control-message latency when remote.
        """
        self.directory.record_write(task.outputs, worker.node_id)
        if worker.node_id == self.home_node:
            self._finish_at_home(task)
        else:
            sim = self.sim
            sim.schedule(self.network.control_message_time(),
                         partial(self._finish_at_home, task),
                         label=(f"task-finish-notice:{task.task_id}"
                                if sim.labels else ""))

    def _finish_at_home(self, task: Task) -> None:
        execution = self._child_exec.pop(task, None)
        if execution is not None:
            execution.on_child_finished(task)
            self.scheduler.drain()
            return
        released = self.deps.notify_finished(task)
        if self.obs is not None and released:
            self.obs.dep_release(task, released)
        self.outstanding -= 1
        if self.outstanding < 0:
            raise RuntimeModelError(
                f"apprank {self.apprank}: outstanding tasks went negative")
        self.scheduler.drain()
        if self.outstanding == 0 and self._taskwait_signal is not None:
            signal = self._taskwait_signal
            self._taskwait_signal = None
            signal.fire(None)

    # -- statistics ---------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Submission/offload/transfer counters for this apprank."""
        return {
            "submitted": self.tasks_submitted,
            "offloaded": self.scheduler.tasks_offloaded,
            "kept_home": self.scheduler.tasks_kept_home,
            "queued_now": self.scheduler.queued,
            "bytes_transferred": self.directory.bytes_transferred,
        }
