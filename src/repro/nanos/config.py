"""Runtime configuration (the paper's ``nanos6.toml`` analogue).

One frozen dataclass selects every mechanism the evaluation ablates:
offloading degree, LeWI, DROM, and the core-allocation policy. The named
constructors build the exact configurations the figures compare.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..errors import RuntimeModelError

__all__ = ["RuntimeConfig"]


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs for one simulated run."""

    #: nodes each apprank may execute on, including its own (§5.2); 1 = no offload
    offload_degree: int = 1
    #: fine-grained lend/borrow of idle cores (§5.3)
    lewi: bool = True
    #: coarse-grained ownership changes (§5.4); policies need this
    drom: bool = True
    #: core-allocation (DROM reallocation) policy: "local" (§5.4.1),
    #: "global" (§5.4.2), any other name in
    #: :data:`repro.policies.REALLOCATION_POLICIES`, or None
    policy: Optional[str] = "global"
    #: §5.5 offload placement policy, by name in
    #: :data:`repro.policies.OFFLOAD_POLICIES` ("tentative" = the paper's)
    offload_policy: str = "tentative"
    #: LeWI lending policy, by name in
    #: :data:`repro.policies.LEND_POLICIES` ("eager" = the paper's)
    lend_policy: str = "eager"
    #: released-core grant-order policy, by name in
    #: :data:`repro.policies.RECLAIM_POLICIES`
    reclaim_policy: str = "owner-first"
    #: local-policy invocation period, seconds ("operates continuously")
    local_period: float = 0.1
    #: global-policy invocation period; the paper runs the solver every 2 s
    global_period: float = 2.0
    #: scheduler threshold: tasks per owned core before spilling (§5.5)
    tasks_per_core: int = 2
    #: seed for expander-graph generation
    graph_seed: int = 0
    #: reuse stored graphs ("each graph is stored for future executions")
    use_graph_cache: bool = True
    #: pull written data back to the home node at taskwait (§3.2: data is
    #: written back when "needed by a task or a taskwait")
    taskwait_writeback: bool = True
    #: model the global solver's gather+solve latency (57 ms at 32 nodes)
    model_solver_cost: bool = True
    #: §5.4.2 home-core incentive: offloaded work counts as (1+penalty)
    offload_penalty: float = 1e-6
    #: §5.4.2 scaling path: solve the global LP in groups of at most this
    #: many nodes ("larger graphs than 32 nodes should be partitioned and
    #: solved in parts"). None = one whole-cluster solve.
    global_partition_nodes: Optional[int] = None
    #: §5.2 "Dynamic work spreading" (the paper's proposed extension):
    #: start at the configured degree and grow helper ranks at runtime
    #: when an apprank's spill queue stays backed up
    dynamic_spreading: bool = False
    #: controller period for dynamic spreading, seconds
    dynamic_period: float = 0.2
    #: backed-up controller ticks before a helper is spawned
    dynamic_patience: int = 2
    #: cap on nodes per apprank that dynamic spreading may reach
    dynamic_max_degree: int = 8
    #: modelled process-spawn latency for a new helper rank, seconds
    dynamic_spawn_latency: float = 0.1
    #: full structured instrumentation (:mod:`repro.obs`): event bus,
    #: metrics registry, Chrome/Paraver export, critical-path analysis.
    #: Off by default — disabled runs never even import the subsystem.
    obs: bool = False
    #: invariant sanitizer (:mod:`repro.validate`): asserts clock
    #: monotonicity, message conservation/ordering, dependency and
    #: placement rules, DLB core conservation, and directory coherence
    #: in-line, then replays the task graph against a sequential reference
    #: executor at the end of the run. Purely passive (never schedules
    #: events or consumes randomness), so enabling it does not perturb
    #: timing. Off by default — disabled runs never import the subsystem.
    validate: bool = False
    #: wall-clock self-profiling (:mod:`repro.perf`): phase timers and
    #: per-subsystem attribution on the *host* clock. Only ever reads
    #: ``time.perf_counter()``, so arming it cannot perturb the simulated
    #: run. Off by default — disabled runs never import the subsystem.
    perf: bool = False
    #: record busy/owned trace timelines (costs memory; used by Figs 5/9/11)
    trace: bool = False
    #: ownership sampling period for traces, seconds
    trace_period: float = 0.05
    #: resilience: time to wait for an offload acknowledgement before
    #: re-sending (only armed when a fault plan is active)
    offload_ack_timeout: float = 0.05
    #: resilience: multiplier applied to the ack timeout per re-send
    offload_backoff: float = 2.0
    #: resilience: how many times a lost task may be re-submitted before
    #: the runtime surfaces :class:`repro.errors.TaskLostError`
    max_retries: int = 3

    def __post_init__(self) -> None:
        if self.offload_degree < 1:
            raise RuntimeModelError(
                f"offload degree must be >= 1, got {self.offload_degree}")
        # Policy names resolve against the repro.policies registries (the
        # import is deferred to keep this module import-light).
        from ..policies import (LEND_POLICIES, OFFLOAD_POLICIES,
                                REALLOCATION_POLICIES, RECLAIM_POLICIES)
        if self.policy is not None and self.policy not in REALLOCATION_POLICIES:
            raise RuntimeModelError(
                f"unknown policy {self.policy!r}; registered: "
                f"{', '.join(REALLOCATION_POLICIES.names())}")
        for value, registry in ((self.offload_policy, OFFLOAD_POLICIES),
                                (self.lend_policy, LEND_POLICIES),
                                (self.reclaim_policy, RECLAIM_POLICIES)):
            if value not in registry:
                raise RuntimeModelError(
                    f"unknown {registry.kind} policy {value!r}; registered: "
                    f"{', '.join(registry.names())}")
        if self.policy is not None and not self.drom:
            raise RuntimeModelError(
                "core-allocation policies act through DROM; enable drom or "
                "set policy=None")
        if self.tasks_per_core < 1:
            raise RuntimeModelError("tasks_per_core must be >= 1")
        if self.local_period <= 0 or self.global_period <= 0:
            raise RuntimeModelError("policy periods must be positive")
        if self.offload_penalty < 0:
            raise RuntimeModelError("offload penalty must be >= 0")
        if (self.global_partition_nodes is not None
                and self.global_partition_nodes < 1):
            raise RuntimeModelError("global_partition_nodes must be >= 1")
        if self.dynamic_spreading:
            if self.global_partition_nodes is not None:
                raise RuntimeModelError(
                    "dynamic spreading and partitioned solves are mutually "
                    "exclusive (a grown edge may cross any group boundary)")
            if not self.drom:
                raise RuntimeModelError(
                    "dynamic spreading seeds new helpers through DROM")
        if self.dynamic_period <= 0 or self.dynamic_spawn_latency < 0:
            raise RuntimeModelError("invalid dynamic-spreading timing")
        if self.dynamic_patience < 1 or self.dynamic_max_degree < 1:
            raise RuntimeModelError("invalid dynamic-spreading limits")
        if self.offload_ack_timeout <= 0:
            raise RuntimeModelError("offload_ack_timeout must be positive")
        if self.offload_backoff < 1.0:
            raise RuntimeModelError("offload_backoff must be >= 1")
        if self.max_retries < 0:
            raise RuntimeModelError("max_retries must be >= 0")

    # -- the configurations the paper evaluates ---------------------------

    @classmethod
    def baseline(cls, **overrides) -> "RuntimeConfig":
        """Plain MPI+OmpSs-2: no offloading, no DLB (Figs 6/9 "baseline")."""
        return cls(offload_degree=1, lewi=False, drom=False,
                   policy=None, **overrides)

    @classmethod
    def dlb_single_node(cls, **overrides) -> "RuntimeConfig":
        """Single-node DLB (the paper's "degree 1"/"DLB" reference):
        LeWI + DROM balancing among the appranks of each node."""
        return cls(offload_degree=1, lewi=True, drom=True,
                   policy="local", **overrides)

    @classmethod
    def offloading(cls, degree: int, policy: str = "global",
                   **overrides) -> "RuntimeConfig":
        """MPI + OmpSs-2@Cluster with DLB (the paper's contribution)."""
        return cls(offload_degree=degree, lewi=True, drom=True,
                   policy=policy, **overrides)

    def with_(self, **overrides) -> "RuntimeConfig":
        """Functional update helper."""
        return replace(self, **overrides)
