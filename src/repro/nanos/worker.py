"""Worker processes: task execution on the cores of one node (paper §5.1).

A worker is one (apprank, node) edge of the expander graph — the apprank's
main worker on its home node or a helper rank elsewhere. It keeps a queue
of runnable tasks, starts them on cores granted by the node's DLB arbiter,
and reports busy-core levels to its :class:`~repro.balance.load.LoadMeter`
(feeding both policies) and to the optional trace recorder.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import TYPE_CHECKING, Callable, Optional

from ..balance.load import LoadMeter
from ..cluster.node import Core, Node, WorkerKey
from ..dlb.shmem import NodeArbiter
from ..errors import NodeFailedError, SchedulerError
from ..sim.engine import Simulator
from ..sim.events import Event
from .nesting import BodyExecution
from .task import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dlb.talp import TalpModule
    from ..metrics.trace import TraceRecorder
    from ..obs import Observability
    from ..validate import Sanitizer

__all__ = ["Worker"]


class Worker:
    """Execution agent for one apprank on one node."""

    def __init__(self, sim: Simulator, key: WorkerKey, node: Node,
                 arbiter: NodeArbiter,
                 on_task_finished: Callable[[Task, "Worker"], None],
                 talp: Optional["TalpModule"] = None,
                 trace: Optional["TraceRecorder"] = None,
                 obs: Optional["Observability"] = None,
                 validator: Optional["Sanitizer"] = None) -> None:
        self.sim = sim
        self.key = key
        self.node = node
        self.arbiter = arbiter
        self._on_task_finished = on_task_finished
        self.talp = talp
        self.trace = trace
        self.obs = obs
        self.validator = validator
        self.ready: deque[Task] = deque()
        self.running: dict[Task, Core] = {}
        #: nested-task bodies parked at a scheduling point, awaiting a core
        #: (resumption takes priority over fresh tasks)
        self.resume: deque[BodyExecution] = deque()
        self._body_cores: dict[BodyExecution, Core] = {}
        #: set by ClusterRuntime; nesting needs the apprank runtime to
        #: route child submissions and completions
        self.apprank_runtime = None
        #: tasks bound to this worker that have not finished (in transfer,
        #: ready, or running) — the scheduler's tasks-per-core numerator
        self.assigned = 0
        #: bodies blocked in taskwait: they hold no core, so the scheduler
        #: must not count them (or their own children deadlock in the
        #: spill queue behind their parents)
        self.blocked_bodies = 0
        self.meter = LoadMeter(start_time=sim.now)
        self.tasks_executed = 0
        self.work_executed = 0.0
        #: False once :meth:`kill` ran (the process crashed); a dead worker
        #: never accepts or starts work again
        self.alive = True
        #: completion events for running tasks, so :meth:`kill` can cancel
        #: the in-flight completions of a crashed process
        self._completion_events: dict[Task, Event] = {}

    @property
    def apprank(self) -> int:
        return self.key[0]

    @property
    def node_id(self) -> int:
        return self.key[1]

    # -- arbiter port -----------------------------------------------------

    def has_ready(self) -> bool:
        """Arbiter port: runnable task or parked body awaiting a core?"""
        return self.alive and (bool(self.ready) or bool(self.resume))

    def ready_count(self) -> int:
        """Arbiter port: backlog size used for borrow prioritisation."""
        return len(self.ready) + len(self.resume)

    def start_next_on(self, core: Core) -> bool:
        """Arbiter grant: resume a parked body or start a ready task."""
        if not self.alive:
            return False
        if self.resume:
            self._grant_body(self.resume.popleft(), core)
            return True
        if not self.ready:
            return False
        self._start(self.ready.popleft(), core)
        return True

    # -- scheduler-facing -------------------------------------------------

    def notify_assigned(self) -> None:
        """The scheduler bound a task to us (it may still be in transfer)."""
        self.assigned += 1

    def enqueue(self, task: Task) -> None:
        """A task (inputs present) becomes runnable here."""
        if not self.alive:
            raise SchedulerError(
                f"{task!r} delivered to dead worker {self.key!r}")
        if task.assigned_node != self.node_id:
            raise SchedulerError(
                f"{task!r} delivered to node {self.node_id}, assigned to "
                f"{task.assigned_node}")
        task.state = TaskState.RUNNABLE
        self.ready.append(task)
        self.try_start()

    def try_start(self) -> None:
        """Start as many ready tasks as the arbiter will give cores for.

        When the queue drains with cores still idle, those cores are lent
        to the node pool (LeWI's lend-when-idle, §5.3).
        """
        while self.ready or self.resume:
            core = self.arbiter.acquire_core(self)
            if core is None:
                break
            if self.resume:
                self._grant_body(self.resume.popleft(), core)
            else:
                self._start(self.ready.popleft(), core)
        if not self.has_ready():
            self.arbiter.lend_idle_cores(self.key)

    # -- execution ---------------------------------------------------------

    def _start(self, task: Task, core: Core) -> None:
        if self.validator is not None:
            self.validator.task_started(task, self)
        if task.body is not None:
            self._start_body(task, core)
            return
        core.start(self.key)
        task.state = TaskState.RUNNING
        task.start_time = self.sim.now
        self.running[task] = core
        self.meter.increment(self.sim.now)
        if self.trace is not None:
            self.trace.busy_delta(self.sim.now, self.node_id, self.apprank, +1)
        duration = self.node.task_duration(task.work)
        sim = self.sim
        self._completion_events[task] = sim.schedule(
            duration, partial(self._complete, task),
            label=(f"task-complete:{task.task_id}" if sim.labels else ""))

    # -- nested-task bodies (see nanos.nesting) ----------------------------

    def _apprank_runtime(self):
        if self.apprank_runtime is None:
            raise SchedulerError(
                f"worker {self.key!r} has no apprank runtime bound; nested "
                "tasks need the full ClusterRuntime wiring")
        return self.apprank_runtime

    def _start_body(self, task: Task, core: Core) -> None:
        task.state = TaskState.RUNNING
        task.start_time = self.sim.now
        execution = BodyExecution(self, task)
        self._grant_body(execution, core)

    def _grant_body(self, execution: BodyExecution, core: Core) -> None:
        core.start(self.key)
        self._body_cores[execution] = core
        self.meter.increment(self.sim.now)
        if self.trace is not None:
            self.trace.busy_delta(self.sim.now, self.node_id, self.apprank, +1)
        execution.start_on(core)

    def _release_body_core(self, execution: BodyExecution) -> None:
        core = self._body_cores.pop(execution)
        core.stop(self.key)
        self.meter.decrement(self.sim.now)
        if self.trace is not None:
            self.trace.busy_delta(self.sim.now, self.node_id, self.apprank, -1)
        self.arbiter.release_core(core, self.key)

    def _park_for_resume(self, execution: BodyExecution) -> None:
        self.resume.append(execution)
        self.try_start()

    def _note_body_blocked(self) -> None:
        """A body entered taskwait with children outstanding."""
        self.blocked_bodies += 1
        # Its slot no longer counts toward the §5.5 ratio: queued tasks
        # (its own children among them) may now be placed here.
        runtime = self.apprank_runtime
        if runtime is not None:
            runtime.scheduler.drain()

    def _note_body_unblocked(self) -> None:
        self.blocked_bodies -= 1
        if self.blocked_bodies < 0:
            raise SchedulerError(f"worker {self.key!r}: blocked underflow")

    def _finish_body(self, execution: BodyExecution) -> None:
        task = execution.task
        now = self.sim.now
        task.state = TaskState.FINISHED
        task.finish_time = now
        self.assigned -= 1
        self.tasks_executed += 1
        self.work_executed += execution.compute_seconds
        if self.obs is not None:
            self.obs.task_executed(task, self.node_id, -1,
                                   start=task.start_time, end=now)
        if self.talp is not None and execution.compute_seconds > 0:
            self.talp.add_useful(
                self.apprank, self.node.task_duration(execution.compute_seconds))
        if self.validator is not None:
            self.validator.task_finished(task, self)
        self._on_task_finished(task, self)
        self._steal_if_starving()
        if not self.has_ready():
            self.arbiter.lend_idle_cores(self.key)

    def _steal_if_starving(self) -> None:
        """§5.5 completion stealing: keep this worker's pipeline fed.

        At a completion, pull tasks from the apprank's spill queue up to
        the number of cores that are *demonstrably idle and available to
        us right now* (owned idle plus LeWI-borrowable) — bypassing the
        per-owned-core submission threshold. This is what lets a helper
        rank ramp onto a neighbour's lent cores (Figure 9c) while the
        tentative scheduler stays conservative about temporary cores."""
        if self.apprank_runtime is None:
            return
        scheduler = self.apprank_runtime.scheduler
        capacity = self.arbiter.available_idle_count(self.key)
        want = capacity - len(self.ready)
        for _ in range(want):
            if not scheduler.steal_for(self):
                break

    # -- fault handling ----------------------------------------------------

    def kill(self) -> list[Task]:
        """The worker process crashes: stop everything, return lost tasks.

        Running tasks have their completion events cancelled and their
        cores stopped (the arbiter reassigns them via ``retire_worker``,
        which the caller invokes next); ready tasks are simply dropped.
        Both sets are returned so :class:`ClusterRuntime` can re-submit
        them elsewhere. A worker with a nested task body in flight cannot
        be replayed (its partial body progress is not checkpointable) and
        raises :class:`NodeFailedError`.
        """
        if not self.alive:
            raise NodeFailedError(f"worker {self.key!r} killed twice")
        if self._body_cores or self.resume or self.blocked_bodies:
            raise NodeFailedError(
                f"worker {self.key!r} crashed with nested task bodies in "
                "flight; their partial progress cannot be replayed")
        self.alive = False
        now = self.sim.now
        lost: list[Task] = []
        for task, core in sorted(self.running.items(),
                                 key=lambda item: item[0].task_id):
            self.sim.cancel(self._completion_events.pop(task))
            core.stop(self.key)
            self.meter.decrement(now)
            if self.trace is not None:
                self.trace.busy_delta(now, self.node_id, self.apprank, -1)
            lost.append(task)
        self.running.clear()
        lost.extend(self.ready)
        self.ready.clear()
        self.assigned = 0
        return lost

    def _complete(self, task: Task) -> None:
        core = self.running.pop(task)
        self._completion_events.pop(task, None)
        core.stop(self.key)
        now = self.sim.now
        task.state = TaskState.FINISHED
        task.finish_time = now
        self.assigned -= 1
        self.tasks_executed += 1
        self.work_executed += task.work
        self.meter.decrement(now)
        if self.trace is not None:
            self.trace.busy_delta(now, self.node_id, self.apprank, -1)
        if self.obs is not None:
            self.obs.task_executed(task, self.node_id, core.index,
                                   start=task.start_time, end=now)
            if core.owner != self.key:
                self.obs.borrowed_core_time(now - task.start_time)
        if self.talp is not None:
            self.talp.add_useful(self.apprank, now - task.start_time)
        # Hand the core back before dependency release so a successor
        # arriving at this instant sees a consistent core state.
        self.arbiter.release_core(core, self.key)
        if self.validator is not None:
            self.validator.task_finished(task, self)
        self._on_task_finished(task, self)
        self._steal_if_starving()
        if not self.has_ready():
            self.arbiter.lend_idle_cores(self.key)
