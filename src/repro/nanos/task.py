"""Tasks and their data accesses (paper §3.1, §4).

A task is a unit of work with *accesses* — typed memory regions that drive
all three uses the paper highlights: dependency computation, node-level
locality, and inter-node data transfers. Task bodies are modelled as a
nominal duration (seconds at node speed 1.0); the real mini-apps in
:mod:`repro.apps` provide measured durations for their kernels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..errors import TaskError

__all__ = ["AccessType", "DataAccess", "Task", "TaskState"]


class AccessType(enum.Enum):
    """OmpSs-2 dependency access types.

    Beyond the basic ``in``/``out``/``inout``:

    * ``concurrent`` — a relaxed inout: tasks in a concurrent group may run
      simultaneously with each other while staying ordered against every
      ordinary reader/writer on the region;
    * ``commutative`` — inout tasks that may execute in any order but not
      simultaneously. Implemented by serialising them in submission order
      (one valid order), the standard conservative realisation.
    """

    IN = "in"
    OUT = "out"
    INOUT = "inout"
    CONCURRENT = "concurrent"
    COMMUTATIVE = "commutative"

    # ``reads``/``writes`` are plain member attributes (filled in below,
    # once, at import): mode checks run per region piece in the locality
    # directory's scans, where a property call would dominate.
    reads: bool
    writes: bool


for _mode in AccessType:
    _mode.reads = _mode in (AccessType.IN, AccessType.INOUT,
                            AccessType.CONCURRENT, AccessType.COMMUTATIVE)
    _mode.writes = _mode in (AccessType.OUT, AccessType.INOUT,
                             AccessType.CONCURRENT, AccessType.COMMUTATIVE)
del _mode


@dataclass(frozen=True)
class DataAccess:
    """One typed access to the half-open byte region ``[start, end)``.

    Regions live in the apprank's virtual address space; the common layout
    across workers (§4) means no translation is ever needed.
    """

    mode: AccessType
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise TaskError(f"empty/inverted access region [{self.start}, {self.end})")
        if self.start < 0:
            raise TaskError(f"negative region start {self.start}")

    @property
    def nbytes(self) -> int:
        return self.end - self.start


class TaskState(enum.Enum):
    """Lifecycle of a task from creation to completion."""

    CREATED = "created"       # dependencies not yet satisfied
    READY = "ready"           # satisfiable, at the scheduler
    ASSIGNED = "assigned"     # bound to a worker (offload is final, §5.5)
    TRANSFERRING = "transfer" # waiting for eager input copies
    RUNNABLE = "runnable"     # at the worker, waiting for a core
    RUNNING = "running"
    FINISHED = "finished"


_task_counter = 0


def _next_task_id() -> int:
    global _task_counter
    _task_counter += 1
    return _task_counter


@dataclass(eq=False)
class Task:
    """One task instance. Identity-based equality (tasks are unique events)."""

    work: float                      # nominal seconds at speed 1.0
    accesses: tuple[DataAccess, ...] = ()
    offloadable: bool = True
    label: str = ""
    apprank: int = -1                # filled in at submission
    task_id: int = field(default_factory=_next_task_id)
    state: TaskState = TaskState.CREATED

    #: nested-task body: a callable taking a
    #: :class:`repro.nanos.nesting.TaskContext` and returning a generator
    #: that yields ``ctx.compute(dt)`` / ``ctx.taskwait()``. When set,
    #: ``work`` is only an estimate; the realised cost comes from the body.
    body: Optional[Callable[..., Any]] = None
    #: the task this one was submitted from (None for top-level tasks)
    parent: Optional["Task"] = None
    #: §4/§5.1: non-offloadable tasks are "fixed on the same node as the
    #: task's parent" — for children this pins to the parent's execution
    #: node; None means the scheduler's default (the apprank home)
    pinned_node: Optional[int] = None

    # Dependency bookkeeping (owned by the dependency system):
    pending_predecessors: int = 0
    successors: list["Task"] = field(default_factory=list)

    # Placement (owned by the scheduler/worker):
    assigned_node: Optional[int] = None
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    #: when the dependency system last released the task (set by the
    #: scheduler; re-set when a recovered task becomes ready again)
    ready_time: Optional[float] = None
    #: predecessor task ids at registration — recorded only on observed
    #: runs (``config.obs``), feeding the critical-path reconstruction
    pred_ids: tuple[int, ...] = ()
    #: times this task was lost (crashed worker, dropped offload) and
    #: re-submitted; bounded by :attr:`RuntimeConfig.max_retries`
    retries: int = 0

    # Lazily-filled caches over the immutable ``accesses`` tuple: the
    # scheduler and directory read ``inputs``/``input_bytes`` on every
    # placement decision and dispatch.
    _inputs: Optional[tuple[DataAccess, ...]] = field(
        default=None, init=False, repr=False, compare=False)
    _outputs: Optional[tuple[DataAccess, ...]] = field(
        default=None, init=False, repr=False, compare=False)
    _input_bytes: Optional[int] = field(
        default=None, init=False, repr=False, compare=False)
    #: scheduler placement cache: (directory version, worker-key tuple,
    #: candidate order) — see ``AppRankScheduler._place_fast``
    _place_cache: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False)

    @property
    def depth(self) -> int:
        """Nesting depth (0 for top-level tasks)."""
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    @property
    def all_ancestors_non_offloadable(self) -> bool:
        """The §4 MPI-safety condition: the task and every ancestor are
        non-offloadable (so the task provably runs on the home node)."""
        node: Optional[Task] = self
        while node is not None:
            if node.offloadable:
                return False
            node = node.parent
        return True

    def __post_init__(self) -> None:
        if self.work < 0:
            raise TaskError(f"negative task work {self.work}")

    @property
    def inputs(self) -> tuple[DataAccess, ...]:
        inputs = self._inputs
        if inputs is None:
            inputs = self._inputs = tuple(
                a for a in self.accesses if a.mode.reads)
        return inputs

    @property
    def outputs(self) -> tuple[DataAccess, ...]:
        outputs = self._outputs
        if outputs is None:
            outputs = self._outputs = tuple(
                a for a in self.accesses if a.mode.writes)
        return outputs

    @property
    def input_bytes(self) -> int:
        nbytes = self._input_bytes
        if nbytes is None:
            nbytes = self._input_bytes = sum(a.nbytes for a in self.inputs)
        return nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = self.label or f"task{self.task_id}"
        return (f"Task({name}, apprank={self.apprank}, "
                f"{self.state.value}, work={self.work:.4f})")
