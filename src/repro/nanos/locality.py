"""Per-apprank data-location directory (paper §3.2).

Tracks which nodes hold a valid copy of each region of the apprank's
address space. Copies are *eager*: inputs are transferred to the executing
node before the task starts, and "there is no automatic write-back to the
original node, unless the data value is needed by a task or a taskwait" —
so a write simply invalidates every other copy, and data written remotely
stays remote until someone reads it elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import RuntimeModelError
from .regions import IntervalMap
from .task import DataAccess

__all__ = ["DataDirectory"]


@dataclass
class _Locations:
    """Segment value: the set of nodes holding a valid copy."""

    nodes: set[int] = field(default_factory=set)

    def clone(self) -> "_Locations":
        return _Locations(set(self.nodes))


class DataDirectory:
    """Region → location-set map for one apprank.

    Untouched regions implicitly live on the apprank's home node (where the
    data was allocated by the main function).
    """

    def __init__(self, home_node: int) -> None:
        self.home_node = home_node
        self._map: IntervalMap[_Locations] = IntervalMap()
        self.bytes_transferred = 0
        self.transfers = 0
        #: bytes whose only valid copy sat on a crashed node (see drop_node)
        self.bytes_lost = 0

    def locations_of(self, start: int,
                     end: int) -> list[tuple[int, int, frozenset[int]]]:
        """(start, end, nodes) pieces covering ``[start, end)``."""
        if end <= start:
            raise RuntimeModelError(f"empty region [{start}, {end})")
        pieces: list[tuple[int, int, frozenset[int]]] = []
        cursor = start
        for seg in self._map.overlapping(start, end):
            if seg.start > cursor:
                pieces.append((cursor, seg.start, frozenset({self.home_node})))
            pieces.append((max(seg.start, start), min(seg.end, end),
                           frozenset(seg.value.nodes)))
            cursor = min(seg.end, end)
        if cursor < end:
            pieces.append((cursor, end, frozenset({self.home_node})))
        return pieces

    def bytes_missing_at(self, accesses: Iterable[DataAccess], node: int) -> int:
        """Input bytes that must be copied in before executing at *node*."""
        missing = 0
        for access in accesses:
            if not access.mode.reads:
                continue
            for start, end, nodes in self.locations_of(access.start, access.end):
                if node not in nodes:
                    missing += end - start
        return missing

    def bytes_present_at(self, accesses: Iterable[DataAccess], node: int) -> int:
        """Input bytes already valid at *node* (the scheduler's locality score)."""
        present = 0
        for access in accesses:
            if not access.mode.reads:
                continue
            for start, end, nodes in self.locations_of(access.start, access.end):
                if node in nodes:
                    present += end - start
        return present

    def record_copy_in(self, accesses: Iterable[DataAccess], node: int) -> int:
        """Mark every read region valid at *node*; returns bytes copied."""
        copied = 0
        for access in accesses:
            if not access.mode.reads:
                continue
            for start, end, nodes in self.locations_of(access.start, access.end):
                if node not in nodes:
                    copied += end - start

            def update(value):
                if value is None:
                    value = _Locations({self.home_node})
                value.nodes.add(node)
                return value

            self._map.apply(access.start, access.end, update)
        self.bytes_transferred += copied
        if copied:
            self.transfers += 1
        return copied

    def record_write(self, accesses: Iterable[DataAccess], node: int) -> None:
        """A write at *node* makes it the sole valid location of out regions."""
        for access in accesses:
            if not access.mode.writes:
                continue
            self._map.set_range(access.start, access.end, _Locations({node}))

    def bytes_missing_home(self) -> int:
        """Bytes written remotely whose value is not valid at home."""
        return sum(seg.length for seg in self._map
                   if self.home_node not in seg.value.nodes)

    def record_pull_home(self) -> int:
        """Taskwait write-back: make every region valid at home.

        Returns the bytes that had to move (§3.2: values come home when
        "needed by a task or a taskwait").
        """
        pulled = 0
        for seg in self._map:
            if self.home_node not in seg.value.nodes:
                pulled += seg.length
                seg.value.nodes.add(self.home_node)
        self.bytes_transferred += pulled
        if pulled:
            self.transfers += 1
        return pulled

    def drop_node(self, node: int) -> int:
        """A node crashed: every copy it held is gone.

        Regions whose *only* valid copy lived there fall back to the home
        node — modelling the home-node checkpoint the data was initialised
        from (the re-executed producer task regenerates the real value).
        Returns the bytes recovered that way (also counted in
        :attr:`bytes_lost`).
        """
        lost = 0
        for seg in self._map:
            if node in seg.value.nodes:
                seg.value.nodes.discard(node)
                if not seg.value.nodes:
                    lost += seg.length
                    seg.value.nodes.add(self.home_node)
        self.bytes_lost += lost
        return lost

    def nodes_with_any_copy(self, start: int, end: int) -> set[int]:
        """Every node holding a valid copy of any part of the region."""
        out: set[int] = set()
        for _s, _e, nodes in self.locations_of(start, end):
            out |= nodes
        return out
