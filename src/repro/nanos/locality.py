"""Per-apprank data-location directory (paper §3.2).

Tracks which nodes hold a valid copy of each region of the apprank's
address space. Copies are *eager*: inputs are transferred to the executing
node before the task starts, and "there is no automatic write-back to the
original node, unless the data value is needed by a task or a taskwait" —
so a write simply invalidates every other copy, and data written remotely
stays remote until someone reads it elsewhere.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..errors import RuntimeModelError
from .regions import IntervalMap
from .task import DataAccess

__all__ = ["DataDirectory"]


class _Locations:
    """Segment value: the set of nodes holding a valid copy.

    ``__slots__`` class: allocated on every segment split and gap-fill in
    the directory's per-dispatch updates.
    """

    __slots__ = ("nodes",)

    def __init__(self, nodes: Optional[set[int]] = None) -> None:
        self.nodes = nodes if nodes is not None else set()

    def clone(self) -> "_Locations":
        return _Locations(set(self.nodes))


class DataDirectory:
    """Region → location-set map for one apprank.

    Untouched regions implicitly live on the apprank's home node (where the
    data was allocated by the main function).
    """

    def __init__(self, home_node: int) -> None:
        self.home_node = home_node
        self._map: IntervalMap[_Locations] = IntervalMap()
        #: bumped on every mutation; placement caches key their locality
        #: snapshots on it (same version ⇒ same ``bytes_present_at`` answers)
        self.version = 0
        self.bytes_transferred = 0
        self.transfers = 0
        #: bytes whose only valid copy sat on a crashed node (see drop_node)
        self.bytes_lost = 0

    def locations_of(self, start: int,
                     end: int) -> list[tuple[int, int, frozenset[int]]]:
        """(start, end, nodes) pieces covering ``[start, end)``."""
        if end <= start:
            raise RuntimeModelError(f"empty region [{start}, {end})")
        pieces: list[tuple[int, int, frozenset[int]]] = []
        cursor = start
        for seg in self._map.overlapping(start, end):
            if seg.start > cursor:
                pieces.append((cursor, seg.start, frozenset({self.home_node})))
            pieces.append((max(seg.start, start), min(seg.end, end),
                           frozenset(seg.value.nodes)))
            cursor = min(seg.end, end)
        if cursor < end:
            pieces.append((cursor, end, frozenset({self.home_node})))
        return pieces

    def bytes_missing_at(self, accesses: Iterable[DataAccess], node: int) -> int:
        """Input bytes that must be copied in before executing at *node*.

        Walks the interval map directly (same pieces as
        :meth:`locations_of`, without materialising the frozenset list):
        this runs per dispatch, on the scheduler's hot path.
        """
        missing = 0
        home_missing = node != self.home_node
        overlapping = self._map.overlapping
        for access in accesses:
            if not access.mode.reads:
                continue
            start, end = access.start, access.end
            cursor = start
            for seg in overlapping(start, end):
                seg_start, seg_end = seg.start, seg.end
                if seg_start > cursor and home_missing:
                    missing += seg_start - cursor
                stop = seg_end if seg_end < end else end
                if node not in seg.value.nodes:
                    missing += stop - (seg_start if seg_start > start else start)
                cursor = stop
            if cursor < end and home_missing:
                missing += end - cursor
        return missing

    def bytes_present_at(self, accesses: Iterable[DataAccess], node: int) -> int:
        """Input bytes already valid at *node* (the scheduler's locality score)."""
        present = 0
        home_present = node == self.home_node
        overlapping = self._map.overlapping
        for access in accesses:
            if not access.mode.reads:
                continue
            start, end = access.start, access.end
            cursor = start
            for seg in overlapping(start, end):
                seg_start, seg_end = seg.start, seg.end
                if seg_start > cursor and home_present:
                    present += seg_start - cursor
                stop = seg_end if seg_end < end else end
                if node in seg.value.nodes:
                    present += stop - (seg_start if seg_start > start else start)
                cursor = stop
            if cursor < end and home_present:
                present += end - cursor
        return present

    def present_bytes_for(self, accesses: Iterable[DataAccess],
                          node_ids: Iterable[int]) -> dict[int, int]:
        """Locality scores for *every* node in one pass.

        Equivalent to ``{n: bytes_present_at(accesses, n) for n in
        node_ids}`` but walks the interval map once instead of once per
        node — the placement fast path scores all adjacent nodes per
        ready task.
        """
        totals = dict.fromkeys(node_ids, 0)
        home = self.home_node
        home_known = home in totals
        overlapping = self._map.overlapping
        for access in accesses:
            if not access.mode.reads:
                continue
            start, end = access.start, access.end
            cursor = start
            for seg in overlapping(start, end):
                seg_start, seg_end = seg.start, seg.end
                if seg_start > cursor and home_known:
                    totals[home] += seg_start - cursor
                stop = seg_end if seg_end < end else end
                length = stop - (seg_start if seg_start > start else start)
                for node in seg.value.nodes:
                    if node in totals:
                        totals[node] += length
                cursor = stop
            if cursor < end and home_known:
                totals[home] += end - cursor
        return totals

    def record_copy_in(self, accesses: Iterable[DataAccess], node: int) -> int:
        """Mark every read region valid at *node*; returns bytes copied.

        Regions already fully valid at *node* are left untouched — no
        segment materialisation and, when *every* region is valid, no
        version bump, so locally re-read data keeps placement caches
        warm. Skipping is sound because adding *node* to sets that
        already contain it changes no location query's answer.
        """
        copied = 0
        changed = False
        for access in accesses:
            if not access.mode.reads:
                continue
            missing = False
            for start, end, nodes in self.locations_of(access.start, access.end):
                if node not in nodes:
                    copied += end - start
                    missing = True
            if not missing:
                continue
            changed = True

            def update(value):
                if value is None:
                    value = _Locations({self.home_node})
                value.nodes.add(node)
                return value

            self._map.apply(access.start, access.end, update)
        if changed:
            self.version += 1
        self.bytes_transferred += copied
        if copied:
            self.transfers += 1
        return copied

    def record_write(self, accesses: Iterable[DataAccess], node: int) -> None:
        """A write at *node* makes it the sole valid location of out regions.

        Rewriting a region whose sole valid copy is already at *node* is
        a semantic no-op (the steady state of iterative apps rerunning a
        task on its home placement): it is detected with one overlap
        scan and skipped — no segment splits, and when every region is
        in that state, no version bump either, which is what keeps the
        scheduler's placement cache hot across iterations.
        """
        sole = {node}
        changed = False
        for access in accesses:
            if not access.mode.writes:
                continue
            start, end = access.start, access.end
            cursor = start
            for seg in self._map.overlapping(start, end):
                if seg.start > cursor or seg.value.nodes != sole:
                    break
                cursor = seg.end if seg.end < end else end
            if cursor >= end:
                continue
            changed = True
            self._map.set_range(start, end, _Locations({node}))
        if changed:
            self.version += 1

    def bytes_missing_home(self) -> int:
        """Bytes written remotely whose value is not valid at home."""
        return sum(seg.length for seg in self._map
                   if self.home_node not in seg.value.nodes)

    def record_pull_home(self) -> int:
        """Taskwait write-back: make every region valid at home.

        Returns the bytes that had to move (§3.2: values come home when
        "needed by a task or a taskwait").
        """
        self.version += 1
        pulled = 0
        for seg in self._map:
            if self.home_node not in seg.value.nodes:
                pulled += seg.length
                seg.value.nodes.add(self.home_node)
        self.bytes_transferred += pulled
        if pulled:
            self.transfers += 1
        return pulled

    def drop_node(self, node: int) -> int:
        """A node crashed: every copy it held is gone.

        Regions whose *only* valid copy lived there fall back to the home
        node — modelling the home-node checkpoint the data was initialised
        from (the re-executed producer task regenerates the real value).
        Returns the bytes recovered that way (also counted in
        :attr:`bytes_lost`).
        """
        self.version += 1
        lost = 0
        for seg in self._map:
            if node in seg.value.nodes:
                seg.value.nodes.discard(node)
                if not seg.value.nodes:
                    lost += seg.length
                    seg.value.nodes.add(self.home_node)
        self.bytes_lost += lost
        return lost

    def nodes_with_any_copy(self, start: int, end: int) -> set[int]:
        """Every node holding a valid copy of any part of the region."""
        out: set[int] = set()
        for _s, _e, nodes in self.locations_of(start, end):
            out |= nodes
        return out
