"""LogGP-style network timing model.

The interconnects in the paper (Omni-Path, full-fat tree) are close enough
to non-blocking at the studied scales that a per-message model suffices:

    transfer_time(n) = latency + overhead + n / bandwidth

Messages at or below the eager threshold complete in one flight; larger
messages pay an extra round-trip for the rendezvous handshake, mirroring
how real MPI implementations behave and how the simulated MPI layer uses
this model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ClusterConfigError

__all__ = ["NetworkModel"]


@dataclass(frozen=True)
class NetworkModel:
    latency_s: float
    bandwidth_bps: float
    overhead_s: float = 1e-6
    eager_threshold_bytes: int = 32 * 1024

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.overhead_s < 0:
            raise ClusterConfigError("negative network timing parameter")
        if self.bandwidth_bps <= 0:
            raise ClusterConfigError("bandwidth must be positive")
        if self.eager_threshold_bytes < 0:
            raise ClusterConfigError("eager threshold must be >= 0")

    def is_eager(self, nbytes: int) -> bool:
        """Whether a message of *nbytes* is sent without a rendezvous."""
        return nbytes <= self.eager_threshold_bytes

    def transfer_time(self, nbytes: int) -> float:
        """One-way time for *nbytes* between two distinct nodes."""
        if nbytes < 0:
            raise ClusterConfigError(f"negative message size: {nbytes}")
        base = self.latency_s + self.overhead_s + nbytes / self.bandwidth_bps
        if not self.is_eager(nbytes):
            # rendezvous: request + clear-to-send round trip before payload
            base += 2 * self.latency_s
        return base

    def local_copy_time(self, nbytes: int) -> float:
        """Time for an intra-node handoff (no NIC, just software overhead).

        Shared-memory transports are roughly an order of magnitude faster
        than loopback through the NIC; this model only needs them to be
        cheap-but-not-free.
        """
        if nbytes < 0:
            raise ClusterConfigError(f"negative message size: {nbytes}")
        return self.overhead_s + nbytes / (8 * self.bandwidth_bps / 2)

    def control_message_time(self) -> float:
        """Time for a tiny runtime control message (offload, satisfy, finish)."""
        return self.transfer_time(128)
