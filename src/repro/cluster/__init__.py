"""Simulated hardware: machines, nodes, cores, and the network model."""

from .machine import GENERIC_SMALL, MARENOSTRUM4, NORD3, MachineSpec
from .network import NetworkModel
from .node import Core, Node
from .topology import Cluster, ClusterSpec

__all__ = [
    "MachineSpec",
    "MARENOSTRUM4",
    "NORD3",
    "GENERIC_SMALL",
    "NetworkModel",
    "Core",
    "Node",
    "Cluster",
    "ClusterSpec",
]
