"""Machine descriptions for the simulated clusters.

The two presets mirror the paper's platforms (§6.3):

* **MareNostrum 4** — 2× 24-core Intel Xeon Platinum per node (48 cores),
  96 GB, 100 Gb/s Intel Omni-Path full-fat tree.
* **Nord 3** — 2× 8-core Intel E5-2670 SandyBridge per node (16 cores),
  running at 3.0 GHz normally and 1.8 GHz for the "slow node" experiments.

Frequencies follow the paper's stated values rather than vendor nominal
clocks, because it is the paper's 3.0/1.8 ratio that drives Figure 6(c).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ClusterConfigError

__all__ = ["MachineSpec", "MARENOSTRUM4", "NORD3", "GENERIC_SMALL"]


@dataclass(frozen=True)
class MachineSpec:
    """Static description of one machine type.

    Network parameters feed the LogGP-style transfer model in
    :mod:`repro.cluster.network`; they are calibration knobs, not claims
    about the real fabric.
    """

    name: str
    cores_per_node: int
    base_freq_ghz: float
    memory_per_node_gb: float
    network_latency_s: float
    network_bandwidth_bps: float
    #: per-message software overhead (send+recv side combined), seconds
    network_overhead_s: float = 1e-6
    #: messages at or below this size are sent eagerly (no rendezvous)
    eager_threshold_bytes: int = 32 * 1024

    def __post_init__(self) -> None:
        if self.cores_per_node <= 0:
            raise ClusterConfigError(f"{self.name}: cores_per_node must be > 0")
        if self.base_freq_ghz <= 0:
            raise ClusterConfigError(f"{self.name}: base frequency must be > 0")
        if self.network_latency_s < 0 or self.network_overhead_s < 0:
            raise ClusterConfigError(f"{self.name}: negative network timing")
        if self.network_bandwidth_bps <= 0:
            raise ClusterConfigError(f"{self.name}: bandwidth must be > 0")
        if self.memory_per_node_gb <= 0:
            raise ClusterConfigError(f"{self.name}: memory must be > 0")

    def scaled(self, cores_per_node: int) -> "MachineSpec":
        """A copy with a different core count (for fast, scaled-down runs).

        Scheduling behaviour is per-core-ratio driven, so experiments keep
        their shape when scaled; benchmarks use this to stay quick.
        """
        if cores_per_node == self.cores_per_node:
            return self
        return replace(self, name=f"{self.name}/c{cores_per_node}",
                       cores_per_node=cores_per_node)


#: MareNostrum 4 general-purpose block (paper §6.3).
MARENOSTRUM4 = MachineSpec(
    name="MareNostrum4",
    cores_per_node=48,
    base_freq_ghz=2.1,
    memory_per_node_gb=96.0,
    network_latency_s=1.5e-6,
    network_bandwidth_bps=100e9 / 8,
)

#: Nord 3 (paper §6.3), used for the slow-node experiments.
NORD3 = MachineSpec(
    name="Nord3",
    cores_per_node=16,
    base_freq_ghz=3.0,
    memory_per_node_gb=32.0,
    network_latency_s=2.5e-6,
    network_bandwidth_bps=40e9 / 8,
)

#: Small generic machine for unit tests and quick benchmarks.
GENERIC_SMALL = MachineSpec(
    name="generic-small",
    cores_per_node=8,
    base_freq_ghz=2.0,
    memory_per_node_gb=16.0,
    network_latency_s=2e-6,
    network_bandwidth_bps=12.5e9,
)
