"""Node and core state.

A :class:`Core` tracks two orthogonal facts used by DLB:

* **ownership** — which worker process the core belongs to (DROM changes
  this semi-permanently);
* **occupancy** — which worker is *currently running* on it, which differs
  from the owner while the core is lent out via LeWI.

The "worker" identifiers stored here are opaque hashables; the runtime uses
``(apprank_id, node_id)`` tuples.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Optional

from ..errors import ClusterConfigError, DlbError

__all__ = ["Core", "Node"]

WorkerKey = Hashable


class Core:
    """One CPU core on a node."""

    __slots__ = ("node_id", "index", "owner", "occupant", "lent", "pending_owner")

    def __init__(self, node_id: int, index: int) -> None:
        self.node_id = node_id
        self.index = index
        #: worker that owns the core under DROM (None = unassigned)
        self.owner: Optional[WorkerKey] = None
        #: worker currently executing on the core (None = idle)
        self.occupant: Optional[WorkerKey] = None
        #: True while the owner has lent the core to the DLB pool
        self.lent = False
        #: DROM ownership transfer deferred to the current task's completion
        self.pending_owner: Optional[WorkerKey] = None

    @property
    def busy(self) -> bool:
        """Whether something is executing on the core right now."""
        return self.occupant is not None

    @property
    def borrowed(self) -> bool:
        """Whether a non-owner is currently running on the core."""
        return self.occupant is not None and self.occupant != self.owner

    def set_owner(self, worker: Optional[WorkerKey]) -> None:
        """DROM ownership change. Clears lend state and pending transfers."""
        self.owner = worker
        self.lent = False
        self.pending_owner = None

    def apply_pending_owner(self) -> bool:
        """Apply a deferred DROM transfer; returns True if ownership moved."""
        if self.pending_owner is None:
            return False
        self.owner = self.pending_owner
        self.pending_owner = None
        self.lent = False
        return True

    def start(self, worker: WorkerKey) -> None:
        """Mark the core busy on behalf of *worker*."""
        if self.occupant is not None:
            raise DlbError(
                f"core {self.node_id}.{self.index} already occupied "
                f"by {self.occupant!r}")
        self.occupant = worker

    def stop(self, worker: WorkerKey) -> None:
        """Mark the core idle again; *worker* must be the occupant."""
        if self.occupant != worker:
            raise DlbError(
                f"core {self.node_id}.{self.index}: stop by {worker!r} "
                f"but occupant is {self.occupant!r}"
            )
        self.occupant = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Core({self.node_id}.{self.index}, owner={self.owner!r}, "
                f"occupant={self.occupant!r}, lent={self.lent})")


class Node:
    """A compute node: a set of cores and a speed factor.

    ``speed`` multiplies compute throughput: a task of nominal duration *d*
    takes ``d / speed`` on this node. The slow-node experiments set
    ``speed = 1.8/3.0 = 0.6`` (paper §6.3).
    """

    __slots__ = ("node_id", "num_cores", "speed", "cores")

    def __init__(self, node_id: int, num_cores: int, speed: float = 1.0) -> None:
        if num_cores <= 0:
            raise ClusterConfigError(f"node {node_id}: num_cores must be > 0")
        if speed <= 0:
            raise ClusterConfigError(f"node {node_id}: speed must be > 0")
        self.node_id = node_id
        self.num_cores = num_cores
        self.speed = speed
        self.cores = [Core(node_id, i) for i in range(num_cores)]

    def cores_owned_by(self, worker: WorkerKey) -> list[Core]:
        """All cores currently owned (under DROM) by *worker*."""
        return [c for c in self.cores if c.owner == worker]

    def count_owned(self, worker: WorkerKey) -> int:
        """Number of cores currently owned by *worker* under DROM."""
        return sum(1 for c in self.cores if c.owner == worker)

    def busy_cores(self) -> int:
        """Number of cores executing right now."""
        return sum(1 for c in self.cores if c.busy)

    def busy_cores_of(self, worker: WorkerKey) -> int:
        """Cores this worker is currently executing on (owned or borrowed)."""
        return sum(1 for c in self.cores if c.occupant == worker)

    def iter_idle(self) -> Iterator[Core]:
        """Iterate over cores with nothing executing on them."""
        return (c for c in self.cores if not c.busy)

    def owners(self) -> set[WorkerKey]:
        """Distinct owners present on the node (excluding unowned cores)."""
        return {c.owner for c in self.cores if c.owner is not None}

    def task_duration(self, nominal: float) -> float:
        """Wall time of a task with nominal duration *nominal* on this node."""
        return nominal / self.speed

    def set_speed(self, speed: float) -> None:
        """Change the node's speed at runtime (DVFS / thermal throttling).

        Affects tasks *started* after the change; tasks already running
        keep their committed duration (the common modelling simplification
        for events far longer than one task).
        """
        if speed <= 0:
            raise ClusterConfigError(f"node {self.node_id}: speed must be > 0")
        self.speed = speed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.node_id}, cores={self.num_cores}, speed={self.speed})"
