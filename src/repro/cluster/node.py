"""Node and core state.

A :class:`Core` tracks two orthogonal facts used by DLB:

* **ownership** — which worker process the core belongs to (DROM changes
  this semi-permanently);
* **occupancy** — which worker is *currently running* on it, which differs
  from the owner while the core is lent out via LeWI.

The "worker" identifiers stored here are opaque hashables; the runtime uses
``(apprank_id, node_id)`` tuples.

Storage is **columnar**: the per-core facts live in parallel lists on the
node's shared :class:`CoreColumns`, and each :class:`Core` is a thin view
over one column position. DLB arbitration scans all cores of a node many
times per simulated second — iterating flat lists of owners/occupants
beats chasing an object per core — while the view keeps the established
per-core API (``core.owner``, ``core.start(...)``, direct attribute
assignment in tests) working unchanged. The columns also maintain an
incremental owner→count map, making ``count_owned`` O(1) instead of a
scan; it is the single hottest DLB query (the scheduler asks it for every
adjacent node on every placement decision).
"""

from __future__ import annotations

from typing import Hashable, Iterator, Optional

from ..errors import ClusterConfigError, DlbError

__all__ = ["Core", "CoreColumns", "Node"]

WorkerKey = Hashable


class CoreColumns:
    """Parallel per-core state arrays for one node (or a detached core).

    ``owner[i]``/``occupant[i]``/``lent[i]``/``pending[i]`` hold core
    *i*'s DROM owner, current occupant, LeWI lend flag and deferred DROM
    transfer target. ``owned_counts`` is the incrementally-maintained
    owner → owned-core count map; every owner write **must** go through
    :meth:`set_owner_at` (or the :class:`Core` property) to keep it true.
    """

    __slots__ = ("owner", "occupant", "lent", "pending", "owned_counts")

    def __init__(self, num_cores: int) -> None:
        self.owner: list[Optional[WorkerKey]] = [None] * num_cores
        self.occupant: list[Optional[WorkerKey]] = [None] * num_cores
        self.lent: list[bool] = [False] * num_cores
        self.pending: list[Optional[WorkerKey]] = [None] * num_cores
        self.owned_counts: dict[WorkerKey, int] = {}

    def set_owner_at(self, pos: int, worker: Optional[WorkerKey]) -> None:
        """Write ``owner[pos]`` keeping :attr:`owned_counts` consistent."""
        counts = self.owned_counts
        old = self.owner[pos]
        if old is not None:
            counts[old] -= 1
        self.owner[pos] = worker
        if worker is not None:
            counts[worker] = counts.get(worker, 0) + 1


class Core:
    """One CPU core on a node — a view over its node's columns."""

    __slots__ = ("node_id", "index", "_cols", "_pos")

    def __init__(self, node_id: int, index: int,
                 cols: Optional[CoreColumns] = None, pos: int = 0) -> None:
        self.node_id = node_id
        self.index = index
        if cols is None:           # detached core (direct construction)
            cols = CoreColumns(1)
            pos = 0
        self._cols = cols
        self._pos = pos

    # -- column-backed attributes -----------------------------------------

    @property
    def owner(self) -> Optional[WorkerKey]:
        """Worker that owns the core under DROM (None = unassigned)."""
        return self._cols.owner[self._pos]

    @owner.setter
    def owner(self, worker: Optional[WorkerKey]) -> None:
        self._cols.set_owner_at(self._pos, worker)

    @property
    def occupant(self) -> Optional[WorkerKey]:
        """Worker currently executing on the core (None = idle)."""
        return self._cols.occupant[self._pos]

    @occupant.setter
    def occupant(self, worker: Optional[WorkerKey]) -> None:
        self._cols.occupant[self._pos] = worker

    @property
    def lent(self) -> bool:
        """True while the owner has lent the core to the DLB pool."""
        return self._cols.lent[self._pos]

    @lent.setter
    def lent(self, value: bool) -> None:
        self._cols.lent[self._pos] = value

    @property
    def pending_owner(self) -> Optional[WorkerKey]:
        """DROM ownership transfer deferred to the current task's completion."""
        return self._cols.pending[self._pos]

    @pending_owner.setter
    def pending_owner(self, worker: Optional[WorkerKey]) -> None:
        self._cols.pending[self._pos] = worker

    # -- derived state -----------------------------------------------------

    @property
    def busy(self) -> bool:
        """Whether something is executing on the core right now."""
        return self._cols.occupant[self._pos] is not None

    @property
    def borrowed(self) -> bool:
        """Whether a non-owner is currently running on the core."""
        cols, pos = self._cols, self._pos
        occupant = cols.occupant[pos]
        return occupant is not None and occupant != cols.owner[pos]

    def set_owner(self, worker: Optional[WorkerKey]) -> None:
        """DROM ownership change. Clears lend state and pending transfers."""
        cols, pos = self._cols, self._pos
        cols.set_owner_at(pos, worker)
        cols.lent[pos] = False
        cols.pending[pos] = None

    def apply_pending_owner(self) -> bool:
        """Apply a deferred DROM transfer; returns True if ownership moved."""
        cols, pos = self._cols, self._pos
        pending = cols.pending[pos]
        if pending is None:
            return False
        cols.set_owner_at(pos, pending)
        cols.pending[pos] = None
        cols.lent[pos] = False
        return True

    def start(self, worker: WorkerKey) -> None:
        """Mark the core busy on behalf of *worker*."""
        cols, pos = self._cols, self._pos
        if cols.occupant[pos] is not None:
            raise DlbError(
                f"core {self.node_id}.{self.index} already occupied "
                f"by {cols.occupant[pos]!r}")
        cols.occupant[pos] = worker

    def stop(self, worker: WorkerKey) -> None:
        """Mark the core idle again; *worker* must be the occupant."""
        cols, pos = self._cols, self._pos
        if cols.occupant[pos] != worker:
            raise DlbError(
                f"core {self.node_id}.{self.index}: stop by {worker!r} "
                f"but occupant is {cols.occupant[pos]!r}"
            )
        cols.occupant[pos] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Core({self.node_id}.{self.index}, owner={self.owner!r}, "
                f"occupant={self.occupant!r}, lent={self.lent})")


class Node:
    """A compute node: a set of cores and a speed factor.

    ``speed`` multiplies compute throughput: a task of nominal duration *d*
    takes ``d / speed`` on this node. The slow-node experiments set
    ``speed = 1.8/3.0 = 0.6`` (paper §6.3).
    """

    __slots__ = ("node_id", "num_cores", "speed", "cores", "cols")

    def __init__(self, node_id: int, num_cores: int, speed: float = 1.0) -> None:
        if num_cores <= 0:
            raise ClusterConfigError(f"node {node_id}: num_cores must be > 0")
        if speed <= 0:
            raise ClusterConfigError(f"node {node_id}: speed must be > 0")
        self.node_id = node_id
        self.num_cores = num_cores
        self.speed = speed
        #: the columnar per-core state (shared by every core view below)
        self.cols = CoreColumns(num_cores)
        self.cores = [Core(node_id, i, self.cols, i) for i in range(num_cores)]

    def cores_owned_by(self, worker: WorkerKey) -> list[Core]:
        """All cores currently owned (under DROM) by *worker*."""
        owner = self.cols.owner
        return [c for i, c in enumerate(self.cores) if owner[i] == worker]

    def count_owned(self, worker: WorkerKey) -> int:
        """Number of cores currently owned by *worker* under DROM."""
        return self.cols.owned_counts.get(worker, 0)

    def busy_cores(self) -> int:
        """Number of cores executing right now."""
        return sum(1 for occupant in self.cols.occupant if occupant is not None)

    def busy_cores_of(self, worker: WorkerKey) -> int:
        """Cores this worker is currently executing on (owned or borrowed)."""
        return sum(1 for occupant in self.cols.occupant if occupant == worker)

    def iter_idle(self) -> Iterator[Core]:
        """Iterate over cores with nothing executing on them."""
        occupant = self.cols.occupant
        return (c for i, c in enumerate(self.cores) if occupant[i] is None)

    def owners(self) -> set[WorkerKey]:
        """Distinct owners present on the node (excluding unowned cores)."""
        return {owner for owner in self.cols.owner if owner is not None}

    def task_duration(self, nominal: float) -> float:
        """Wall time of a task with nominal duration *nominal* on this node."""
        return nominal / self.speed

    def set_speed(self, speed: float) -> None:
        """Change the node's speed at runtime (DVFS / thermal throttling).

        Affects tasks *started* after the change; tasks already running
        keep their committed duration (the common modelling simplification
        for events far longer than one task).
        """
        if speed <= 0:
            raise ClusterConfigError(f"node {self.node_id}: speed must be > 0")
        self.speed = speed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.node_id}, cores={self.num_cores}, speed={self.speed})"
