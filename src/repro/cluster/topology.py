"""Cluster-level description: a machine type instantiated over N nodes.

:class:`ClusterSpec` is the *static* description (hashable, comparable,
usable as an experiment parameter); :class:`Cluster` is the *stateful*
instantiation holding live :class:`~repro.cluster.node.Node` objects for one
simulation run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ClusterConfigError
from .machine import MachineSpec
from .network import NetworkModel
from .node import Node

__all__ = ["ClusterSpec", "Cluster"]


@dataclass(frozen=True)
class ClusterSpec:
    """Static cluster description.

    ``slow_nodes`` maps node id → speed factor (< 1 means slower). All other
    nodes run at speed 1.0 relative to the machine's base frequency.
    """

    machine: MachineSpec
    num_nodes: int
    slow_nodes: tuple[tuple[int, float], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ClusterConfigError(f"num_nodes must be > 0, got {self.num_nodes}")
        for node_id, speed in self.slow_nodes:
            if not 0 <= node_id < self.num_nodes:
                raise ClusterConfigError(f"slow node id {node_id} out of range")
            if speed <= 0:
                raise ClusterConfigError(f"slow node {node_id}: speed must be > 0")

    @classmethod
    def homogeneous(cls, machine: MachineSpec, num_nodes: int) -> "ClusterSpec":
        """All nodes at nominal speed."""
        return cls(machine=machine, num_nodes=num_nodes)

    def with_slow_nodes(self, speeds: dict[int, float]) -> "ClusterSpec":
        """Copy of this spec with the given node-id → speed overrides."""
        merged = dict(self.slow_nodes)
        merged.update(speeds)
        return ClusterSpec(machine=self.machine, num_nodes=self.num_nodes,
                           slow_nodes=tuple(sorted(merged.items())))

    def with_slow_node_freq(self, node_id: int, freq_ghz: float) -> "ClusterSpec":
        """Paper-style override: one node clocked at *freq_ghz* (§6.3)."""
        return self.with_slow_nodes({node_id: freq_ghz / self.machine.base_freq_ghz})

    def node_speed(self, node_id: int) -> float:
        """Speed factor of *node_id* (1.0 unless listed slow)."""
        for nid, speed in self.slow_nodes:
            if nid == node_id:
                return speed
        return 1.0

    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.machine.cores_per_node

    def total_capacity(self) -> float:
        """Sum of core·speed over the cluster — the perfect-balance throughput."""
        return sum(self.machine.cores_per_node * self.node_speed(n)
                   for n in range(self.num_nodes))


class Cluster:
    """Stateful cluster for one simulation run."""

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        self.nodes = [
            Node(node_id=i,
                 num_cores=spec.machine.cores_per_node,
                 speed=spec.node_speed(i))
            for i in range(spec.num_nodes)
        ]
        self.network = NetworkModel(
            latency_s=spec.machine.network_latency_s,
            bandwidth_bps=spec.machine.network_bandwidth_bps,
            overhead_s=spec.machine.network_overhead_s,
            eager_threshold_bytes=spec.machine.eager_threshold_bytes,
        )

    @property
    def num_nodes(self) -> int:
        return self.spec.num_nodes

    def node(self, node_id: int) -> Node:
        """The live :class:`Node` for *node_id* (range-checked)."""
        if not 0 <= node_id < len(self.nodes):
            raise ClusterConfigError(f"node id {node_id} out of range")
        return self.nodes[node_id]

    def busy_cores_by_node(self) -> list[int]:
        """Currently executing cores, per node."""
        return [n.busy_cores() for n in self.nodes]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Cluster({self.spec.machine.name}, nodes={self.num_nodes}, "
                f"cores/node={self.spec.machine.cores_per_node})")
