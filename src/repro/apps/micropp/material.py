"""Material models for the micro-scale kernel.

MicroPP's imbalance comes from "the mix of linear and non-linear finite
elements" (paper §6.2): linear-elastic regions need a single solve while
nonlinear regions iterate. We provide:

* :class:`LinearElastic` — standard isotropic Hooke's law;
* :class:`SecantNonlinear` — a strain-softening material whose effective
  modulus decays with equivalent strain (Ramberg–Osgood-flavoured secant
  model), solved by Picard iteration in the driver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import WorkloadError

__all__ = ["LinearElastic", "SecantNonlinear", "elasticity_matrix"]


def elasticity_matrix(youngs: float, poisson: float) -> np.ndarray:
    """6×6 isotropic elasticity matrix in Voigt notation (xx yy zz yz xz xy)."""
    if youngs <= 0:
        raise WorkloadError(f"Young's modulus must be positive, got {youngs}")
    if not -1.0 < poisson < 0.5:
        raise WorkloadError(f"Poisson ratio must be in (-1, 0.5), got {poisson}")
    lam = youngs * poisson / ((1 + poisson) * (1 - 2 * poisson))
    mu = youngs / (2 * (1 + poisson))
    d = np.zeros((6, 6))
    d[:3, :3] = lam
    d[np.arange(3), np.arange(3)] += 2 * mu
    d[np.arange(3, 6), np.arange(3, 6)] = mu
    return d


@dataclass(frozen=True)
class LinearElastic:
    """Isotropic linear elasticity."""

    youngs: float = 1.0e3
    poisson: float = 0.3

    @property
    def is_nonlinear(self) -> bool:
        return False

    def d_matrix(self) -> np.ndarray:
        """Voigt elasticity matrix of the undamaged material."""
        return elasticity_matrix(self.youngs, self.poisson)

    def stiffness_scale(self, equivalent_strain: np.ndarray) -> np.ndarray:
        """Per-element secant scaling (identically 1 for a linear material)."""
        return np.ones_like(equivalent_strain)


@dataclass(frozen=True)
class SecantNonlinear:
    """Strain-softening secant material.

    The effective modulus is ``E / (1 + (eps_eq / eps0)**m)``: stiff at
    small strain, softening as the equivalent strain passes ``eps0``. The
    Picard iteration in the driver converges geometrically; the iteration
    count is what makes nonlinear subdomains several times more expensive
    than linear ones — the very imbalance source the paper exploits.
    """

    youngs: float = 1.0e3
    poisson: float = 0.3
    reference_strain: float = 5e-3
    exponent: float = 1.5

    def __post_init__(self) -> None:
        if self.reference_strain <= 0:
            raise WorkloadError("reference strain must be positive")
        if self.exponent <= 0:
            raise WorkloadError("softening exponent must be positive")

    @property
    def is_nonlinear(self) -> bool:
        return True

    def d_matrix(self) -> np.ndarray:
        """Voigt elasticity matrix of the undamaged material."""
        return elasticity_matrix(self.youngs, self.poisson)

    def stiffness_scale(self, equivalent_strain: np.ndarray) -> np.ndarray:
        """Secant softening factor per element, in (0, 1]."""
        ratio = np.maximum(equivalent_strain, 0.0) / self.reference_strain
        return 1.0 / (1.0 + ratio ** self.exponent)
