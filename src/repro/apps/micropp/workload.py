"""MicroPP simulator workload: per-subdomain task costs with the paper's
linear/nonlinear imbalance structure.

Each apprank owns a set of RVE subdomains (Gauss points of the macro
mesh); a task is one subdomain solve per coupled iteration. Composite
structures put nonlinear regions unevenly across the macro domain, so the
fraction of nonlinear subdomains varies strongly across appranks — the
static, apprank-level imbalance of Figures 6/7/9. Costs can either come
from the built-in model (deterministic, used by benchmarks) or be measured
from the real kernel in :mod:`.driver` (see :func:`measure_kernel_costs`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from ...errors import WorkloadError
from ...mpisim.comm import RankComm
from ...nanos.apprank import AppRankRuntime
from ...nanos.task import AccessType, DataAccess

__all__ = ["MicroppSpec", "nonlinear_fractions", "subdomain_durations",
           "apprank_loads", "micropp_main", "make_micropp_app",
           "measure_kernel_costs"]

#: bytes of state per subdomain (displacement + internal variables)
DEFAULT_SUBDOMAIN_BYTES = 192 * 1024


@dataclass(frozen=True)
class MicroppSpec:
    """One MicroPP weak-scaling configuration."""

    num_appranks: int
    cores_per_apprank: int
    #: subdomain solves per core per coupled iteration
    subdomains_per_core: int = 12
    #: cost of one *linear* subdomain solve, seconds
    linear_cost: float = 0.020
    #: mean cost multiplier of a nonlinear solve (Picard iterations)
    nonlinear_ratio: float = 6.0
    #: nonlinear fraction at the most/least loaded apprank
    max_nonlinear_fraction: float = 0.85
    min_nonlinear_fraction: float = 0.05
    iterations: int = 4
    seed: int = 7
    subdomain_bytes: int = DEFAULT_SUBDOMAIN_BYTES

    def __post_init__(self) -> None:
        if self.num_appranks < 1 or self.cores_per_apprank < 1:
            raise WorkloadError("need at least one apprank and one core")
        if self.subdomains_per_core < 1:
            raise WorkloadError("need at least one subdomain per core")
        if self.linear_cost <= 0 or self.nonlinear_ratio < 1:
            raise WorkloadError("invalid cost model")
        if not (0 <= self.min_nonlinear_fraction
                <= self.max_nonlinear_fraction <= 1):
            raise WorkloadError("nonlinear fractions must satisfy 0<=min<=max<=1")

    @property
    def subdomains_per_apprank(self) -> int:
        return self.subdomains_per_core * self.cores_per_apprank


def nonlinear_fractions(spec: MicroppSpec) -> np.ndarray:
    """Fraction of nonlinear subdomains per apprank.

    A quadratic ramp from ``max_nonlinear_fraction`` at apprank 0 down to
    ``min_nonlinear_fraction`` — modelling a composite macro-structure
    where the damage zone sits at one end of the domain (apprank 0 is the
    heavy rank in the paper's traces, Figure 9).
    """
    a = spec.num_appranks
    if a == 1:
        return np.array([spec.max_nonlinear_fraction])
    x = np.arange(a) / (a - 1)
    ramp = (1.0 - x) ** 2
    return (spec.min_nonlinear_fraction
            + (spec.max_nonlinear_fraction - spec.min_nonlinear_fraction) * ramp)


def subdomain_durations(spec: MicroppSpec, apprank: int) -> np.ndarray:
    """Per-subdomain nominal solve times for one apprank (deterministic).

    Linear subdomains cost ``linear_cost``; nonlinear ones cost it times a
    jittered ``nonlinear_ratio`` (Picard counts vary per subdomain). Which
    subdomains are nonlinear is fixed by the seed — the imbalance is static
    across iterations, as in the real application.
    """
    if not 0 <= apprank < spec.num_appranks:
        raise WorkloadError(f"apprank {apprank} out of range")
    rng = np.random.default_rng(spec.seed * 100_003 + apprank)
    count = spec.subdomains_per_apprank
    fraction = nonlinear_fractions(spec)[apprank]
    nonlinear = rng.random(count) < fraction
    ratios = np.ones(count)
    jitter = rng.uniform(0.7, 1.3, size=count)
    ratios[nonlinear] = spec.nonlinear_ratio * jitter[nonlinear]
    return spec.linear_cost * ratios


def apprank_loads(spec: MicroppSpec) -> np.ndarray:
    """Per-apprank work per iteration (core·seconds)."""
    return np.array([subdomain_durations(spec, a).sum()
                     for a in range(spec.num_appranks)])


def micropp_main(comm: RankComm, rt: AppRankRuntime,
                 spec: MicroppSpec) -> Generator[Any, Any, dict]:
    """SPMD main: coupled iterations of subdomain solves.

    Mirrors the FE² macro loop: submit one task per subdomain, taskwait,
    then exchange macro-level boundary data with the MPI neighbours
    (modelled as an allreduce of the convergence norm, which is what the
    macro solver does between coupled iterations).
    """
    durations = subdomain_durations(spec, comm.rank)
    bytes_each = spec.subdomain_bytes
    iteration_times: list[float] = []
    for _iteration in range(spec.iterations):
        t0 = comm.sim.now
        for i, duration in enumerate(durations):
            base = i * bytes_each
            rt.submit(work=float(duration),
                      accesses=(DataAccess(AccessType.INOUT, base,
                                           base + bytes_each),),
                      label=f"rve-{i}")
        yield from rt.taskwait()
        # Macro-solver residual reduction across ranks.
        _norm = yield from comm.allreduce(float(durations.sum()), op="sum")
        iteration_times.append(comm.sim.now - t0)
    return {"iteration_times": iteration_times, "stats": rt.stats()}


def make_micropp_app(spec: MicroppSpec):
    """Bind *spec* for :meth:`ClusterRuntime.run_app`."""
    def main(comm: RankComm, rt: AppRankRuntime):
        result = yield from micropp_main(comm, rt, spec)
        return result
    return main


def measure_kernel_costs(mesh_n: int = 5, repeats: int = 3,
                         seed: int = 3) -> tuple[float, float]:
    """Time the real FE kernel: (linear_seconds, nonlinear_seconds).

    Runs the actual :func:`~repro.apps.micropp.driver.solve_subdomain` on a
    composite RVE and returns the best-of-*repeats* wall times. Use the
    results to parameterise :class:`MicroppSpec` (``linear_cost`` and
    ``nonlinear_ratio``) with measured numbers instead of the defaults.
    Not used by benchmarks (wall-clock is nondeterministic).
    """
    from .driver import solve_subdomain
    from .material import LinearElastic, SecantNonlinear
    from .mesh import StructuredHexMesh
    from .microstructure import spherical_inclusions

    mesh = StructuredHexMesh(mesh_n)
    phase = spherical_inclusions(mesh, 0.25, contrast=10.0, seed=seed)
    eps = np.array([0.02, 0.0, 0.0, 0.0, 0.0, 0.01])
    best_linear = best_nonlinear = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        solve_subdomain(mesh, LinearElastic(), eps, phase_scale=phase)
        t1 = time.perf_counter()
        solve_subdomain(mesh, SecantNonlinear(), eps, phase_scale=phase)
        t2 = time.perf_counter()
        best_linear = min(best_linear, t1 - t0)
        best_nonlinear = min(best_nonlinear, t2 - t1)
    return best_linear, best_nonlinear
