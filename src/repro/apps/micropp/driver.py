"""The micro-scale subdomain solve — MicroPP's task body.

In the FE² setting each task applies a macro-scale strain to one RVE
subdomain and returns the homogenised stress. Linear subdomains need one
CG solve; nonlinear subdomains run a Picard (secant) loop, reassembling
with per-element softening factors until the displacement field settles.
The iteration count difference is the physical source of the load
imbalance the paper balances away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ...errors import WorkloadError
from .assembly import (assemble_global, element_stiffness, element_strains,
                       equivalent_strain)
from .material import LinearElastic, SecantNonlinear
from .mesh import StructuredHexMesh
from .solver import conjugate_gradient

__all__ = ["SubdomainResult", "solve_subdomain", "macro_strain_displacement"]

Material = Union[LinearElastic, SecantNonlinear]


@dataclass(frozen=True)
class SubdomainResult:
    """Outcome of one RVE solve."""

    displacement: np.ndarray
    average_stress: np.ndarray          # Voigt (6,)
    picard_iterations: int              # 1 for linear materials
    cg_iterations_total: int
    converged: bool


def macro_strain_displacement(mesh: StructuredHexMesh,
                              macro_strain: np.ndarray) -> np.ndarray:
    """Affine boundary displacement ``u = eps · x`` for a Voigt macro strain."""
    eps = np.asarray(macro_strain, dtype=float)
    if eps.shape != (6,):
        raise WorkloadError(f"macro strain must be Voigt (6,), got {eps.shape}")
    tensor = np.array([
        [eps[0], eps[5] / 2, eps[4] / 2],
        [eps[5] / 2, eps[1], eps[3] / 2],
        [eps[4] / 2, eps[3] / 2, eps[2]],
    ])
    return (mesh.coordinates @ tensor.T).reshape(-1)


def solve_subdomain(mesh: StructuredHexMesh, material: Material,
                    macro_strain: np.ndarray,
                    phase_scale: np.ndarray | None = None,
                    picard_tol: float = 1e-3,
                    max_picard: int = 50,
                    cg_tol: float = 1e-8) -> SubdomainResult:
    """Solve one RVE under an applied macro strain.

    *phase_scale* is the per-element microstructure stiffness multiplier
    (see :mod:`.microstructure`); heterogeneity here is what makes the
    nonlinear Picard loop take several iterations, as in real composites.
    """
    d_matrix = material.d_matrix()
    ke = element_stiffness(d_matrix, mesh.element_size)
    u_bc = macro_strain_displacement(mesh, macro_strain)
    free = mesh.free_dofs
    fixed = mesh.boundary_dofs
    if phase_scale is None:
        phase_scale = np.ones(mesh.num_elements)
    elif phase_scale.shape != (mesh.num_elements,):
        raise WorkloadError(
            f"phase_scale must have shape ({mesh.num_elements},)")

    u = u_bc.copy()                    # start from the affine field
    softening = np.ones(mesh.num_elements)
    cg_total = 0
    picard_iterations = 0
    converged = True
    while True:
        picard_iterations += 1
        scale = phase_scale * softening
        matrix = assemble_global(mesh, ke, scale)
        # Eliminate Dirichlet DOFs: K_ff u_f = -K_fb u_b
        k_ff = matrix[free][:, free]
        rhs = -(matrix[free][:, fixed] @ u_bc[fixed])
        result = conjugate_gradient(k_ff, rhs, tol=cg_tol,
                                    x0=u[free] if picard_iterations > 1 else None)
        cg_total += result.iterations
        new_u = u_bc.copy()
        new_u[free] = result.x
        delta = np.linalg.norm(new_u - u) / max(np.linalg.norm(new_u), 1e-30)
        u = new_u
        if not material.is_nonlinear:
            converged = result.converged
            break
        strains = element_strains(mesh, u)
        target = material.stiffness_scale(equivalent_strain(strains))
        # Damped Picard update: plain secant substitution oscillates for
        # strong softening; averaging restores geometric convergence.
        softening = 0.5 * softening + 0.5 * target
        if picard_iterations > 1 and delta <= picard_tol:
            converged = result.converged
            break
        if picard_iterations >= max_picard:
            converged = False
            break

    stress = _average_stress(mesh, material, u, phase_scale * softening)
    return SubdomainResult(displacement=u, average_stress=stress,
                           picard_iterations=picard_iterations,
                           cg_iterations_total=cg_total, converged=converged)


def _average_stress(mesh: StructuredHexMesh, material: Material,
                    displacement: np.ndarray, scale: np.ndarray) -> np.ndarray:
    """Volume-average Voigt stress over the RVE (each element equal volume)."""
    strains = element_strains(mesh, displacement)
    d_matrix = material.d_matrix()
    stresses = (strains @ d_matrix.T) * scale[:, None]
    return stresses.mean(axis=0)
