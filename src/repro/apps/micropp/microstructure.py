"""Composite microstructures for the RVE solves.

MicroPP models composite materials (paper [24]): stiff inclusions in a
softer matrix. Heterogeneity is what makes the nonlinear solves iterate —
strain localises in the matrix, the secant softening varies per element,
and the Picard loop needs several rounds to settle.
"""

from __future__ import annotations

import numpy as np

from ...errors import WorkloadError
from .mesh import StructuredHexMesh

__all__ = ["spherical_inclusions", "layered_phases"]


def spherical_inclusions(mesh: StructuredHexMesh, volume_fraction: float,
                         contrast: float, seed: int = 0,
                         num_inclusions: int = 4) -> np.ndarray:
    """Per-element stiffness multiplier with stiff spherical inclusions.

    Elements inside an inclusion get ``contrast`` (> 1 = stiffer), the
    matrix gets 1.0. Inclusion centres are drawn uniformly; radii are set
    so the expected covered volume matches *volume_fraction*.
    """
    if not 0.0 <= volume_fraction < 1.0:
        raise WorkloadError(f"volume fraction must be in [0, 1), got {volume_fraction}")
    if contrast <= 0:
        raise WorkloadError(f"contrast must be positive, got {contrast}")
    if num_inclusions < 1:
        raise WorkloadError("need at least one inclusion")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.1, 0.9, size=(num_inclusions, 3))
    radius = (volume_fraction * 3.0 / (4.0 * np.pi * num_inclusions)) ** (1.0 / 3.0)
    # Element centroids
    n = mesh.n
    axis = (np.arange(n) + 0.5) / n
    cx, cy, cz = np.meshgrid(axis, axis, axis, indexing="ij")
    centroids = np.stack([cx.ravel(), cy.ravel(), cz.ravel()], axis=1)
    scale = np.ones(mesh.num_elements)
    for center in centers:
        inside = np.linalg.norm(centroids - center, axis=1) <= radius
        scale[inside] = contrast
    return scale


def layered_phases(mesh: StructuredHexMesh, contrast: float,
                   layers: int = 2) -> np.ndarray:
    """Deterministic laminate microstructure (alternating stiff/soft layers)."""
    if contrast <= 0:
        raise WorkloadError(f"contrast must be positive, got {contrast}")
    if layers < 1:
        raise WorkloadError("need at least one layer")
    n = mesh.n
    layer_of = (np.arange(n) * layers // n) % 2
    scale = np.where(layer_of == 0, 1.0, contrast)
    return np.repeat(scale, n * n)
