"""Mini MicroPP: a real 3-D voxel FE solid-mechanics kernel plus the
simulator workload model derived from it."""

from .assembly import assemble_global, element_stiffness
from .driver import SubdomainResult, macro_strain_displacement, solve_subdomain
from .homogenization import (EffectiveModuli, effective_moduli,
                             homogenised_stress, stress_strain_curve)
from .material import LinearElastic, SecantNonlinear, elasticity_matrix
from .mesh import StructuredHexMesh
from .microstructure import layered_phases, spherical_inclusions
from .solver import CgResult, conjugate_gradient
from .workload import (MicroppSpec, apprank_loads, make_micropp_app,
                       measure_kernel_costs, micropp_main,
                       nonlinear_fractions, subdomain_durations)

__all__ = [
    "StructuredHexMesh",
    "LinearElastic",
    "SecantNonlinear",
    "elasticity_matrix",
    "element_stiffness",
    "assemble_global",
    "conjugate_gradient",
    "CgResult",
    "solve_subdomain",
    "SubdomainResult",
    "macro_strain_displacement",
    "homogenised_stress",
    "stress_strain_curve",
    "effective_moduli",
    "EffectiveModuli",
    "spherical_inclusions",
    "layered_phases",
    "MicroppSpec",
    "nonlinear_fractions",
    "subdomain_durations",
    "apprank_loads",
    "micropp_main",
    "make_micropp_app",
    "measure_kernel_costs",
]
