"""Hex8 element stiffness and global CSR assembly.

Standard displacement-based FEM: trilinear shape functions on the
reference cube, 2×2×2 Gauss quadrature, Voigt B-matrices. Because the
voxel mesh's elements are congruent cubes, the geometric element stiffness
is computed once and scaled per element — which is also what makes the
secant (Picard) reassembly in the driver cheap.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ...errors import WorkloadError
from .mesh import StructuredHexMesh

__all__ = ["gauss_points", "shape_gradients", "element_stiffness",
           "assemble_global", "element_strains"]

_SIGNS = np.array([
    [-1, -1, -1], [1, -1, -1], [1, 1, -1], [-1, 1, -1],
    [-1, -1, 1], [1, -1, 1], [1, 1, 1], [-1, 1, 1],
], dtype=float)


def gauss_points() -> tuple[np.ndarray, np.ndarray]:
    """2×2×2 Gauss rule on [-1,1]^3: (points (8,3), weights (8,))."""
    g = 1.0 / np.sqrt(3.0)
    pts = _SIGNS * g
    return pts, np.ones(8)


def shape_gradients(xi: np.ndarray) -> np.ndarray:
    """d N_a / d xi_j for the 8 trilinear shape functions at point *xi* (8,3)."""
    xi = np.asarray(xi, dtype=float)
    grads = np.empty((8, 3))
    for a in range(8):
        sx, sy, sz = _SIGNS[a]
        grads[a, 0] = sx * (1 + sy * xi[1]) * (1 + sz * xi[2]) / 8.0
        grads[a, 1] = sy * (1 + sx * xi[0]) * (1 + sz * xi[2]) / 8.0
        grads[a, 2] = sz * (1 + sx * xi[0]) * (1 + sy * xi[1]) / 8.0
    return grads


def _b_matrix(dn_dx: np.ndarray) -> np.ndarray:
    """Voigt strain-displacement matrix (6, 24) from physical gradients (8,3)."""
    b = np.zeros((6, 24))
    for a in range(8):
        dx, dy, dz = dn_dx[a]
        col = 3 * a
        b[0, col + 0] = dx
        b[1, col + 1] = dy
        b[2, col + 2] = dz
        b[3, col + 1] = dz   # gamma_yz
        b[3, col + 2] = dy
        b[4, col + 0] = dz   # gamma_xz
        b[4, col + 2] = dx
        b[5, col + 0] = dy   # gamma_xy
        b[5, col + 1] = dx
    return b


def element_stiffness(d_matrix: np.ndarray, element_size: float) -> np.ndarray:
    """(24, 24) stiffness of one cube element of edge *element_size*."""
    if element_size <= 0:
        raise WorkloadError("element size must be positive")
    jac = element_size / 2.0          # uniform isotropic mapping
    det_j = jac ** 3
    pts, weights = gauss_points()
    ke = np.zeros((24, 24))
    for p, w in zip(pts, weights):
        dn_dx = shape_gradients(p) / jac
        b = _b_matrix(dn_dx)
        ke += w * det_j * (b.T @ d_matrix @ b)
    return 0.5 * (ke + ke.T)          # symmetrise numerical noise away


def element_b_at_center(element_size: float) -> np.ndarray:
    """B-matrix at the element centroid (used for strain recovery)."""
    jac = element_size / 2.0
    dn_dx = shape_gradients(np.zeros(3)) / jac
    return _b_matrix(dn_dx)


def assemble_global(mesh: StructuredHexMesh, ke: np.ndarray,
                    scale: np.ndarray | None = None) -> sp.csr_matrix:
    """Assemble ``sum_e scale_e * Ke`` into a CSR matrix.

    *scale* is the per-element secant factor (None = all ones). Congruent
    elements mean one dense Ke scattered ``num_elements`` times — done with
    a single vectorised COO build.
    """
    ne = mesh.num_elements
    if scale is None:
        scale = np.ones(ne)
    scale = np.asarray(scale, dtype=float)
    if scale.shape != (ne,):
        raise WorkloadError(f"scale must have shape ({ne},), got {scale.shape}")
    dofs = mesh.all_element_dofs                       # (ne, 24)
    rows = np.repeat(dofs, 24, axis=1).reshape(ne, 24, 24)
    cols = np.tile(dofs[:, None, :], (1, 24, 1))
    vals = scale[:, None, None] * ke[None, :, :]
    matrix = sp.coo_matrix(
        (vals.ravel(), (rows.ravel(), cols.ravel())),
        shape=(mesh.num_dofs, mesh.num_dofs))
    return matrix.tocsr()


def element_strains(mesh: StructuredHexMesh, displacement: np.ndarray
                    ) -> np.ndarray:
    """(num_elements, 6) centroid Voigt strains from a displacement field."""
    if displacement.shape != (mesh.num_dofs,):
        raise WorkloadError(
            f"displacement must have {mesh.num_dofs} entries")
    b = element_b_at_center(mesh.element_size)         # (6, 24)
    u_e = displacement[mesh.all_element_dofs]          # (ne, 24)
    return u_e @ b.T


def equivalent_strain(strains: np.ndarray) -> np.ndarray:
    """Scalar von-Mises-style equivalent strain per element."""
    normal = strains[:, :3]
    shear = strains[:, 3:]
    dev = normal - normal.mean(axis=1, keepdims=True)
    return np.sqrt(2.0 / 3.0 * (np.sum(dev ** 2, axis=1)
                                + 0.5 * np.sum(shear ** 2, axis=1)))
