"""Structured hexahedral voxel meshes for the micro-scale FE kernel.

MicroPP (Giuntoli et al., the paper's [24]) solves micro-scale solid
mechanics on voxel RVEs — regular grids of 8-node hexahedra. This module
provides that substrate: node coordinates, element connectivity, boundary
identification, and DOF numbering (3 displacement DOFs per node).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ...errors import WorkloadError

__all__ = ["StructuredHexMesh"]


@dataclass(frozen=True)
class StructuredHexMesh:
    """A unit cube meshed into ``n`` × ``n`` × ``n`` identical hexahedra."""

    n: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise WorkloadError(f"mesh needs n >= 1 elements per edge, got {self.n}")

    @property
    def nodes_per_edge(self) -> int:
        return self.n + 1

    @property
    def num_nodes(self) -> int:
        return self.nodes_per_edge ** 3

    @property
    def num_elements(self) -> int:
        return self.n ** 3

    @property
    def num_dofs(self) -> int:
        return 3 * self.num_nodes

    @property
    def element_size(self) -> float:
        return 1.0 / self.n

    def node_id(self, i: int, j: int, k: int) -> int:
        """Lexicographic node numbering (k fastest)."""
        m = self.nodes_per_edge
        return (i * m + j) * m + k

    @cached_property
    def coordinates(self) -> np.ndarray:
        """(num_nodes, 3) node positions in the unit cube."""
        m = self.nodes_per_edge
        axis = np.linspace(0.0, 1.0, m)
        grid = np.stack(np.meshgrid(axis, axis, axis, indexing="ij"), axis=-1)
        return grid.reshape(-1, 3)

    @cached_property
    def connectivity(self) -> np.ndarray:
        """(num_elements, 8) node ids in the standard hex8 local order."""
        n = self.n
        conn = np.empty((self.num_elements, 8), dtype=np.int64)
        e = 0
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    # local order: bottom face CCW, then top face CCW
                    conn[e] = [
                        self.node_id(i, j, k),
                        self.node_id(i + 1, j, k),
                        self.node_id(i + 1, j + 1, k),
                        self.node_id(i, j + 1, k),
                        self.node_id(i, j, k + 1),
                        self.node_id(i + 1, j, k + 1),
                        self.node_id(i + 1, j + 1, k + 1),
                        self.node_id(i, j + 1, k + 1),
                    ]
                    e += 1
        return conn

    @cached_property
    def boundary_nodes(self) -> np.ndarray:
        """Node ids on the surface of the cube (Dirichlet boundary for RVEs)."""
        coords = self.coordinates
        on_surface = np.any((coords <= 0.0) | (coords >= 1.0), axis=1)
        return np.nonzero(on_surface)[0]

    @cached_property
    def boundary_dofs(self) -> np.ndarray:
        nodes = self.boundary_nodes
        return np.concatenate([3 * nodes, 3 * nodes + 1, 3 * nodes + 2])

    @cached_property
    def free_dofs(self) -> np.ndarray:
        mask = np.ones(self.num_dofs, dtype=bool)
        mask[self.boundary_dofs] = False
        return np.nonzero(mask)[0]

    def element_dofs(self, element: int) -> np.ndarray:
        """The 24 global DOF indices of one element."""
        nodes = self.connectivity[element]
        return (3 * nodes[:, None] + np.arange(3)[None, :]).reshape(-1)

    @cached_property
    def all_element_dofs(self) -> np.ndarray:
        """(num_elements, 24) DOF indices, precomputed for assembly."""
        nodes = self.connectivity
        return (3 * nodes[:, :, None] + np.arange(3)[None, None, :]).reshape(
            self.num_elements, 24)
