"""FE² homogenisation: what MicroPP computes for the macro solver.

In the FE² method (Giuntoli et al., the paper's [24]) every macro-scale
integration point owns an RVE; the macro solver sends it a strain and
gets back the homogenised stress (and, for the tangent, sensitivities).
This module provides that loop over the real micro kernel:

* :func:`homogenised_stress` — one macro strain → volume-averaged stress;
* :func:`stress_strain_curve` — a loading sweep producing the effective
  constitutive curve of the composite (where the secant material's
  softening shows up as curvature);
* :func:`effective_moduli` — small-strain effective Young's modulus and
  Poisson ratio from uniaxial probes, with Voigt/Reuss bound checks.

These are genuinely computed (no simulator involved); the cluster-scale
experiments use the *cost* profile of these solves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ...errors import WorkloadError
from .driver import Material, solve_subdomain
from .mesh import StructuredHexMesh

__all__ = ["homogenised_stress", "stress_strain_curve", "effective_moduli",
           "EffectiveModuli"]


def homogenised_stress(mesh: StructuredHexMesh, material: Material,
                       macro_strain: np.ndarray,
                       phase_scale: Optional[np.ndarray] = None) -> np.ndarray:
    """Voigt stress returned to the macro scale for one strain state."""
    result = solve_subdomain(mesh, material, macro_strain,
                             phase_scale=phase_scale)
    return result.average_stress


def stress_strain_curve(mesh: StructuredHexMesh, material: Material,
                        direction: int = 0, max_strain: float = 0.02,
                        steps: int = 8,
                        phase_scale: Optional[np.ndarray] = None
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Uniaxial loading sweep: returns (strains, stresses) along *direction*.

    *direction* indexes the Voigt component (0..5). For a nonlinear
    composite the curve is concave (softening); for a linear one it is a
    straight line through the origin — both asserted by the tests.
    """
    if not 0 <= direction < 6:
        raise WorkloadError(f"Voigt direction must be 0..5, got {direction}")
    if steps < 1 or max_strain <= 0:
        raise WorkloadError("need steps >= 1 and max_strain > 0")
    strains = np.linspace(0.0, max_strain, steps + 1)
    stresses = np.zeros_like(strains)
    for i, value in enumerate(strains[1:], start=1):
        macro = np.zeros(6)
        macro[direction] = value
        stresses[i] = homogenised_stress(mesh, material, macro,
                                         phase_scale)[direction]
    return strains, stresses


@dataclass(frozen=True)
class EffectiveModuli:
    """Small-strain effective properties of the composite."""

    youngs: float
    poisson: float


def effective_moduli(mesh: StructuredHexMesh, material: Material,
                     phase_scale: Optional[np.ndarray] = None,
                     probe_strain: float = 1e-4) -> EffectiveModuli:
    """Effective E and ν from a uniaxial strain probe.

    A uniaxial *strain* state (eps_xx = e, all others zero — the affine
    Dirichlet RVE condition) gives sigma_xx = C11 e and sigma_yy = C12 e;
    isotropic relations then recover E and ν:

        nu = C12 / (C11 + C12),   E = C11 (1+nu)(1-2nu) / (1-nu)
    """
    if probe_strain <= 0:
        raise WorkloadError("probe strain must be positive")
    macro = np.zeros(6)
    macro[0] = probe_strain
    stress = homogenised_stress(mesh, material, macro, phase_scale)
    c11 = stress[0] / probe_strain
    c12 = stress[1] / probe_strain
    if c11 <= 0 or c11 + c12 <= 0:
        raise WorkloadError("degenerate stiffness probe")
    poisson = c12 / (c11 + c12)
    youngs = c11 * (1 + poisson) * (1 - 2 * poisson) / (1 - poisson)
    return EffectiveModuli(youngs=float(youngs), poisson=float(poisson))
