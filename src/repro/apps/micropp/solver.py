"""Jacobi-preconditioned conjugate gradient for the FE systems.

A dependency-free CG keeps the kernel self-contained and lets tests assert
iteration counts — the quantity that separates linear from nonlinear
subdomain costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ...errors import WorkloadError

__all__ = ["CgResult", "conjugate_gradient"]


@dataclass(frozen=True)
class CgResult:
    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool


def conjugate_gradient(matrix: sp.csr_matrix, rhs: np.ndarray,
                       tol: float = 1e-8, max_iterations: int = 2000,
                       x0: np.ndarray | None = None) -> CgResult:
    """Solve ``matrix @ x = rhs`` (SPD) with Jacobi preconditioning.

    Convergence is relative: ``||r|| <= tol * ||rhs||``. A zero right-hand
    side returns immediately with the zero solution.
    """
    n = rhs.shape[0]
    if matrix.shape != (n, n):
        raise WorkloadError(f"matrix shape {matrix.shape} != rhs size {n}")
    rhs_norm = float(np.linalg.norm(rhs))
    if rhs_norm == 0.0:
        return CgResult(np.zeros(n), 0, 0.0, True)
    diag = matrix.diagonal()
    if np.any(diag <= 0):
        raise WorkloadError("matrix diagonal must be positive (SPD expected)")
    m_inv = 1.0 / diag

    x = np.zeros(n) if x0 is None else x0.astype(float).copy()
    r = rhs - matrix @ x
    z = m_inv * r
    p = z.copy()
    rz = float(r @ z)
    for iteration in range(1, max_iterations + 1):
        ap = matrix @ p
        pap = float(p @ ap)
        if pap <= 0:
            raise WorkloadError("matrix is not positive definite")
        alpha = rz / pap
        x += alpha * p
        r -= alpha * ap
        res = float(np.linalg.norm(r))
        if res <= tol * rhs_norm:
            return CgResult(x, iteration, res, True)
        z = m_inv * r
        rz_new = float(r @ z)
        p = z + (rz_new / rz) * p
        rz = rz_new
    return CgResult(x, max_iterations, float(np.linalg.norm(r)), False)
