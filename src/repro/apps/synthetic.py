"""The paper's synthetic benchmark (§6.2).

"Each iteration of the program has 100 tasks per core, of average duration
50 ms. The task durations are different on the different appranks to meet
the target imbalance. The execution time of the tasks on the worst-case
rank is 50 ms multiplied by the target imbalance. The other execution
times are uniformly distributed over the space of values respecting the
constraints."

The slow-node variant (§7.5) keeps all cluster nodes at full speed and
*emulates* a slow node by multiplying the slow apprank's task durations —
"it is not actually a slow node, just emulated by the task durations".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

import numpy as np

from ..errors import WorkloadError
from ..mpisim.comm import RankComm
from ..nanos.apprank import AppRankRuntime
from ..nanos.task import AccessType, DataAccess

__all__ = ["SyntheticSpec", "task_durations", "apprank_loads",
           "synthetic_main", "make_synthetic_app"]

#: default task payload: 64 KiB in + out per task (small vs 50 ms of work)
DEFAULT_TASK_BYTES = 64 * 1024


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of one synthetic run."""

    num_appranks: int
    imbalance: float                    # Eq. 2 target, >= 1
    cores_per_apprank: int              # tasks per iteration = 100 * this
    tasks_per_core: int = 100
    mean_duration: float = 0.050        # seconds
    iterations: int = 3
    seed: int = 1234
    task_bytes: int = DEFAULT_TASK_BYTES
    #: §7.5 emulation: multiply this apprank's durations by slow_factor
    slow_rank: Optional[int] = None
    slow_factor: float = 3.0
    #: where the *application* imbalance puts its heaviest rank relative to
    #: the slow rank: "most" = slow rank has the most work (right side of
    #: Figure 10), "least" = the least (left side)
    slow_has: str = "most"

    def __post_init__(self) -> None:
        if self.num_appranks < 1:
            raise WorkloadError("need at least one apprank")
        if self.imbalance < 1.0:
            raise WorkloadError(f"imbalance must be >= 1.0, got {self.imbalance}")
        if self.imbalance > self.num_appranks:
            raise WorkloadError(
                f"imbalance {self.imbalance} impossible with "
                f"{self.num_appranks} appranks (max is the apprank count)")
        if self.tasks_per_core < 1 or self.cores_per_apprank < 1:
            raise WorkloadError("need at least one task per iteration")
        if self.mean_duration <= 0:
            raise WorkloadError("mean duration must be positive")
        if self.slow_rank is not None and not (
                0 <= self.slow_rank < self.num_appranks):
            raise WorkloadError(f"slow rank {self.slow_rank} out of range")
        if self.slow_has not in ("most", "least"):
            raise WorkloadError(f"slow_has must be 'most' or 'least'")

    @property
    def tasks_per_apprank(self) -> int:
        return self.tasks_per_core * self.cores_per_apprank


def task_durations(spec: SyntheticSpec) -> np.ndarray:
    """Per-apprank *nominal* task duration meeting the target imbalance.

    The worst-case rank gets ``mean * imbalance``; the remaining ranks'
    durations are drawn uniformly (Dirichlet over the constrained simplex)
    so they sum to the remaining budget and never exceed the maximum.
    Deterministic given the spec's seed. The §7.5 slow-factor multiplier is
    NOT included — it emulates hardware, not application work; apply it via
    :func:`emulated_durations`.
    """
    a = spec.num_appranks
    mean = spec.mean_duration
    if a == 1:
        return np.array([mean])
    worst = mean * spec.imbalance
    budget = a * mean - worst
    rest = a - 1
    if budget < 0:
        raise WorkloadError("imbalance exceeds apprank count")
    rng = np.random.default_rng(spec.seed)
    for _ in range(1000):
        shares = rng.dirichlet(np.ones(rest)) * budget
        if np.all(shares <= worst + 1e-12):
            break
    else:
        # Extremely skewed targets: fall back to an even split (still
        # respects the constraints exactly).
        shares = np.full(rest, budget / rest)
    durations = np.empty(a)
    worst_rank = _worst_rank(spec)
    others = [r for r in range(a) if r != worst_rank]
    durations[worst_rank] = worst
    durations[others] = shares
    if (spec.slow_rank is not None and spec.slow_has == "least"
            and spec.slow_rank != worst_rank):
        # The slow rank must carry the least application work: swap its
        # share with the minimum among the non-worst ranks.
        least = min(others, key=lambda r: durations[r])
        durations[[spec.slow_rank, least]] = durations[[least, spec.slow_rank]]
    return durations


def _worst_rank(spec: SyntheticSpec) -> int:
    """Which apprank carries the maximum load."""
    if spec.slow_rank is not None and spec.slow_has == "most":
        return spec.slow_rank
    if spec.slow_rank is not None and spec.slow_has == "least":
        # Heaviest rank far from the slow rank.
        return (spec.slow_rank + spec.num_appranks // 2) % spec.num_appranks \
            if spec.num_appranks > 1 else 0
    return 0


def emulated_durations(spec: SyntheticSpec) -> np.ndarray:
    """Wall durations including the §7.5 slow-node emulation factor."""
    durations = task_durations(spec)
    if spec.slow_rank is not None:
        durations = durations.copy()
        durations[spec.slow_rank] *= spec.slow_factor
    return durations


def apprank_loads(spec: SyntheticSpec) -> np.ndarray:
    """Per-apprank work per iteration in core·seconds (application work)."""
    return task_durations(spec) * spec.tasks_per_apprank


def emulated_loads(spec: SyntheticSpec) -> np.ndarray:
    """Per-apprank wall work per iteration including slow-node emulation."""
    return emulated_durations(spec) * spec.tasks_per_apprank


def synthetic_main(comm: RankComm, rt: AppRankRuntime,
                   spec: SyntheticSpec) -> Generator[Any, Any, dict]:
    """SPMD main: iterations of independent tasks + taskwait + barrier."""
    durations = emulated_durations(spec)
    my_duration = float(durations[comm.rank])
    bytes_per_task = spec.task_bytes
    iteration_times: list[float] = []
    for _iteration in range(spec.iterations):
        t0 = comm.sim.now
        for i in range(spec.tasks_per_apprank):
            accesses = ()
            if bytes_per_task > 0:
                base = i * bytes_per_task
                accesses = (DataAccess(AccessType.INOUT, base,
                                       base + bytes_per_task),)
            rt.submit(work=my_duration, accesses=accesses,
                      label=f"synthetic-{i}")
        yield from rt.taskwait()
        yield from comm.barrier()
        iteration_times.append(comm.sim.now - t0)
    return {"iteration_times": iteration_times, "stats": rt.stats()}


def make_synthetic_app(spec: SyntheticSpec):
    """Bind *spec* for :meth:`ClusterRuntime.run_app`."""
    def main(comm: RankComm, rt: AppRankRuntime):
        result = yield from synthetic_main(comm, rt, spec)
        return result
    return main
