"""Application workloads: synthetic (§6.2), MicroPP, and n-body."""

from . import micropp, nbody
from .synthetic import (SyntheticSpec, apprank_loads, make_synthetic_app,
                        synthetic_main, task_durations)

__all__ = [
    "micropp",
    "nbody",
    "SyntheticSpec",
    "task_durations",
    "apprank_loads",
    "synthetic_main",
    "make_synthetic_app",
]
