"""n-body simulator workload (Figure 6(c): Nord3 with one slow node).

ORB gives every apprank (nearly) equal *work* each timestep. On a uniform
cluster that is perfect balance; with one node clocked at 1.8 GHz instead
of 3.0 GHz, the equal-work split becomes an equal-*time* imbalance that
ORB's interaction-count cost model cannot see. The slow node is part of
the :class:`~repro.cluster.topology.ClusterSpec` (real hardware slowness,
unlike the synthetic §7.5 emulation), so the runtime's node-speed scaling
applies to whatever tasks land there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from ...errors import WorkloadError
from ...mpisim.comm import RankComm
from ...nanos.apprank import AppRankRuntime
from ...nanos.task import AccessType, DataAccess

__all__ = ["NBodySpec", "rank_residual", "block_durations", "apprank_loads",
           "nbody_main", "make_nbody_app"]

#: bytes per body on the wire (position + velocity + mass, doubles)
BYTES_PER_BODY = 7 * 8


@dataclass(frozen=True)
class NBodySpec:
    """One n-body run configuration for the simulator."""

    num_appranks: int
    cores_per_apprank: int
    #: bodies per apprank (weak scaling keeps this constant)
    bodies_per_apprank: int = 4096
    #: force-task granularity: bodies per task
    bodies_per_task: int = 256
    #: nominal force cost per body per step at speed 1.0, seconds
    cost_per_body: float = 0.4e-3
    timesteps: int = 4
    #: per-task interaction-count jitter (tree-geometry noise), fraction
    orb_jitter: float = 0.03
    #: ORB cost-model residual, fraction. ORB's final bisection splits a
    #: parent region whose total work it knows from last step's counts, but
    #: the cut position mispredicts how the work divides — so *sibling*
    #: partitions (which land on the same node) get anticorrelated errors:
    #: one sibling +d, the other -d, while the pair's total is much tighter
    #: (error j/3). Node-level pooling (LeWI) removes exactly the ±d part,
    #: which is how single-node DLB gains ~16% on n-body in Figure 6(c).
    rank_jitter: float = 0.35
    seed: int = 11

    def __post_init__(self) -> None:
        if self.num_appranks < 1 or self.cores_per_apprank < 1:
            raise WorkloadError("need at least one apprank and core")
        if self.bodies_per_apprank < self.bodies_per_task:
            raise WorkloadError("bodies_per_apprank must cover one task")
        if self.bodies_per_task < 1 or self.cost_per_body <= 0:
            raise WorkloadError("invalid task granularity or cost")
        if not 0 <= self.orb_jitter < 1:
            raise WorkloadError("orb_jitter must be in [0, 1)")
        if not 0 <= self.rank_jitter < 1:
            raise WorkloadError("rank_jitter must be in [0, 1)")

    @property
    def tasks_per_apprank(self) -> int:
        return self.bodies_per_apprank // self.bodies_per_task


def rank_residual(spec: NBodySpec, apprank: int, timestep: int) -> float:
    """ORB residual factor for one apprank at one step.

    Sibling partitions (consecutive appranks, co-located on one node) share
    a parent-region factor ``g ~ U[1 - j/3, 1 + j/3]`` and split the
    bisection error ``d ~ U[0, j]`` with opposite signs: ``g + d`` and
    ``g - d``. Errors re-draw every step (ORB repartitions per timestep).
    """
    pair = apprank // 2
    rng = np.random.default_rng(
        spec.seed * 1_000_003 + pair * 1009 + timestep)
    j = spec.rank_jitter
    parent = rng.uniform(1.0 - j / 3.0, 1.0 + j / 3.0)
    split_error = rng.uniform(0.0, j)
    sign = 1.0 if apprank % 2 == 0 else -1.0
    return parent + sign * split_error


def block_durations(spec: NBodySpec, apprank: int, timestep: int) -> np.ndarray:
    """Nominal per-task durations for one apprank at one timestep.

    Per-rank totals carry the ORB residual (see :func:`rank_residual`);
    per-task values add small tree-geometry jitter.
    """
    rng = np.random.default_rng(
        spec.seed * 2_000_003 + apprank * 1013 + timestep)
    base = spec.cost_per_body * spec.bodies_per_task
    rank_factor = rank_residual(spec, apprank, timestep)
    jitter = rng.uniform(1.0 - spec.orb_jitter, 1.0 + spec.orb_jitter,
                         size=spec.tasks_per_apprank)
    return base * rank_factor * jitter


def apprank_loads(spec: NBodySpec, timestep: int = 0) -> np.ndarray:
    """Per-apprank nominal work (core·s) at one step — near-equal by ORB."""
    return np.array([block_durations(spec, a, timestep).sum()
                     for a in range(spec.num_appranks)])


def nbody_main(comm: RankComm, rt: AppRankRuntime,
               spec: NBodySpec) -> Generator[Any, Any, dict]:
    """SPMD main: per timestep, force tasks + taskwait + position exchange.

    The allgather models the boundary/position exchange that follows each
    step in the real code (each rank needs remote positions to build its
    tree next step).
    """
    bytes_per_block = spec.bodies_per_task * BYTES_PER_BODY
    exchange_bytes = spec.bodies_per_apprank * BYTES_PER_BODY
    iteration_times: list[float] = []
    for step in range(spec.timesteps):
        t0 = comm.sim.now
        durations = block_durations(spec, comm.rank, step)
        for i, duration in enumerate(durations):
            base = i * bytes_per_block
            rt.submit(work=float(duration),
                      accesses=(DataAccess(AccessType.INOUT, base,
                                           base + bytes_per_block),),
                      label=f"force-{step}-{i}")
        yield from rt.taskwait()
        _positions = yield from comm.allgather(
            np.empty(0))  # payload size modelled explicitly below
        # Account the exchange volume with an explicit sized message round.
        if comm.size > 1:
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            sreq = comm.isend(None, right, tag=900 + step % 64,
                              nbytes=exchange_bytes)
            rreq = comm.irecv(left, tag=900 + step % 64)
            yield rreq.signal
            yield sreq.signal
        iteration_times.append(comm.sim.now - t0)
    return {"iteration_times": iteration_times, "stats": rt.stats()}


def make_nbody_app(spec: NBodySpec):
    """Bind *spec* for :meth:`ClusterRuntime.run_app`."""
    def main(comm: RankComm, rt: AppRankRuntime):
        result = yield from nbody_main(comm, rt, spec)
        return result
    return main
