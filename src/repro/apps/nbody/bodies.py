"""Body-set generation for the n-body application."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import WorkloadError

__all__ = ["BodySet", "plummer_sphere", "uniform_cube"]


@dataclass
class BodySet:
    """Positions (n,3), velocities (n,3), masses (n,)."""

    positions: np.ndarray
    velocities: np.ndarray
    masses: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.masses)
        if self.positions.shape != (n, 3) or self.velocities.shape != (n, 3):
            raise WorkloadError("inconsistent body array shapes")
        if np.any(self.masses <= 0):
            raise WorkloadError("masses must be positive")

    def __len__(self) -> int:
        return len(self.masses)

    @property
    def total_mass(self) -> float:
        return float(self.masses.sum())

    def center_of_mass(self) -> np.ndarray:
        """Mass-weighted mean position."""
        return (self.masses[:, None] * self.positions).sum(axis=0) / self.total_mass

    def copy(self) -> "BodySet":
        """Deep copy (simulations mutate in place)."""
        return BodySet(self.positions.copy(), self.velocities.copy(),
                       self.masses.copy())


def plummer_sphere(n: int, seed: int = 0, total_mass: float = 1.0,
                   scale_radius: float = 1.0) -> BodySet:
    """Sample a Plummer model (the classic n-body benchmark distribution).

    Positions follow the Plummer density; velocities are drawn isotropically
    from the local escape-speed distribution (Aarseth–Hénon–Wielen method).
    """
    if n < 1:
        raise WorkloadError(f"need at least one body, got {n}")
    rng = np.random.default_rng(seed)
    # Radius from inverse CDF of the Plummer cumulative mass profile.
    x = rng.uniform(0.0, 1.0, n)
    r = scale_radius / np.sqrt(x ** (-2.0 / 3.0) - 1.0)
    positions = r[:, None] * _random_directions(rng, n)
    # Velocity magnitude by von Neumann rejection on g(q) = q^2 (1-q^2)^3.5.
    q = np.empty(n)
    remaining = np.arange(n)
    while remaining.size:
        trial_q = rng.uniform(0.0, 1.0, remaining.size)
        trial_g = rng.uniform(0.0, 0.1, remaining.size)
        accepted = trial_g < trial_q ** 2 * (1.0 - trial_q ** 2) ** 3.5
        q[remaining[accepted]] = trial_q[accepted]
        remaining = remaining[~accepted]
    escape = np.sqrt(2.0 * total_mass) * (r ** 2 + scale_radius ** 2) ** -0.25
    velocities = (q * escape)[:, None] * _random_directions(rng, n)
    masses = np.full(n, total_mass / n)
    return BodySet(positions, velocities, masses)


def uniform_cube(n: int, seed: int = 0, side: float = 1.0,
                 total_mass: float = 1.0) -> BodySet:
    """Uniformly random bodies at rest in a cube (simple test distribution)."""
    if n < 1:
        raise WorkloadError(f"need at least one body, got {n}")
    rng = np.random.default_rng(seed)
    positions = rng.uniform(-side / 2, side / 2, size=(n, 3))
    velocities = np.zeros((n, 3))
    masses = np.full(n, total_mass / n)
    return BodySet(positions, velocities, masses)


def _random_directions(rng: np.random.Generator, n: int) -> np.ndarray:
    """Uniform points on the unit sphere."""
    z = rng.uniform(-1.0, 1.0, n)
    phi = rng.uniform(0.0, 2.0 * np.pi, n)
    s = np.sqrt(1.0 - z ** 2)
    return np.stack([s * np.cos(phi), s * np.sin(phi), z], axis=1)
