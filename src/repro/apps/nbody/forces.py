"""Force evaluation: Barnes–Hut traversal and the O(n²) reference.

The Barnes–Hut acceptance criterion is the classic one: a cell of size
``s`` at distance ``d`` is treated as a point mass when ``s / d < theta``.
The traversal also counts interactions — that count is the cost model ORB
uses to divide work, exactly the quantity that is blind to node speed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import WorkloadError
from .octree import Octree, build_octree

__all__ = ["ForceResult", "accelerations_direct", "accelerations_barnes_hut"]


@dataclass(frozen=True)
class ForceResult:
    accelerations: np.ndarray      # (n, 3)
    interactions: np.ndarray       # (n,) per-body interaction counts


def accelerations_direct(positions: np.ndarray, masses: np.ndarray,
                         gravity: float = 1.0,
                         softening: float = 1e-3) -> np.ndarray:
    """Exact pairwise accelerations (vectorised O(n²) reference)."""
    n = positions.shape[0]
    if positions.shape != (n, 3) or masses.shape != (n,):
        raise WorkloadError("positions must be (n,3) and masses (n,)")
    delta = positions[None, :, :] - positions[:, None, :]       # (n, n, 3)
    dist2 = (delta ** 2).sum(axis=2) + softening ** 2
    np.fill_diagonal(dist2, np.inf)
    inv_d3 = dist2 ** -1.5
    return gravity * (delta * (masses[None, :] * inv_d3)[:, :, None]).sum(axis=1)


def accelerations_barnes_hut(positions: np.ndarray, masses: np.ndarray,
                             theta: float = 0.5, gravity: float = 1.0,
                             softening: float = 1e-3,
                             targets: np.ndarray | None = None,
                             tree: Octree | None = None) -> ForceResult:
    """Barnes–Hut accelerations for *targets* (default: every body).

    Providing *tree* lets callers reuse one tree across target blocks —
    the way the distributed version computes each rank's block.
    """
    n = positions.shape[0]
    if positions.shape != (n, 3) or masses.shape != (n,):
        raise WorkloadError("positions must be (n,3) and masses (n,)")
    if not 0.0 < theta < 2.0:
        raise WorkloadError(f"theta must be in (0, 2), got {theta}")
    if tree is None:
        tree = build_octree(positions, masses)
    if targets is None:
        targets = np.arange(n)
    eps2 = softening ** 2
    acc = np.zeros((len(targets), 3))
    counts = np.zeros(len(targets), dtype=np.int64)
    for out_i, body in enumerate(targets):
        pos = positions[body]
        total = np.zeros(3)
        interactions = 0
        stack = [0]
        while stack:
            node = stack.pop()
            delta = tree.coms[node] - pos
            dist2 = float(delta @ delta)
            size = 2.0 * tree.half_sizes[node]
            if tree.is_leaf(node):
                ids = tree.leaf_bodies[node]
                ids = ids[ids != body]
                if ids.size:
                    d = positions[ids] - pos
                    r2 = (d ** 2).sum(axis=1) + eps2
                    total += (d * (masses[ids] / r2 ** 1.5)[:, None]).sum(axis=0)
                    interactions += ids.size
            elif size * size < theta * theta * dist2:
                # Far enough: the whole cell acts as one point mass.
                r2 = dist2 + eps2
                total += delta * (tree.masses[node] / r2 ** 1.5)
                interactions += 1
            else:
                stack.extend(int(c) for c in tree.children[node] if c >= 0)
        acc[out_i] = gravity * total
        counts[out_i] = interactions
    return ForceResult(accelerations=acc, interactions=counts)
