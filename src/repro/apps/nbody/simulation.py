"""Standalone Barnes–Hut n-body simulation (leapfrog integrator).

This is the runnable application: build tree → forces → kick-drift-kick,
with ORB repartitioning each step exactly like the paper's n-body code.
It runs serially (each "rank" is a partition processed in turn) and is
used by the example scripts and accuracy tests; the simulator workload
model in :mod:`.workload` reproduces its cost structure at cluster scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...errors import WorkloadError
from .bodies import BodySet
from .forces import accelerations_barnes_hut, accelerations_direct
from .octree import build_octree
from .orb import orb_partition, partition_weights

__all__ = ["NBodySimulation", "StepStats", "total_energy"]


@dataclass(frozen=True)
class StepStats:
    """Per-step diagnostics."""

    step: int
    interactions_total: int
    work_per_rank: np.ndarray       # interaction counts per ORB partition
    orb_imbalance: float            # max/avg of work_per_rank


def total_energy(bodies: BodySet, gravity: float = 1.0,
                 softening: float = 1e-3) -> float:
    """Kinetic + potential energy (O(n²); for conservation tests)."""
    kinetic = 0.5 * float(
        (bodies.masses * (bodies.velocities ** 2).sum(axis=1)).sum())
    delta = bodies.positions[None, :, :] - bodies.positions[:, None, :]
    dist = np.sqrt((delta ** 2).sum(axis=2) + softening ** 2)
    inv = 1.0 / dist
    np.fill_diagonal(inv, 0.0)
    mm = bodies.masses[:, None] * bodies.masses[None, :]
    potential = -0.5 * gravity * float((mm * inv).sum())
    return kinetic + potential


@dataclass
class NBodySimulation:
    """Leapfrog Barnes–Hut simulation with per-step ORB partitioning."""

    bodies: BodySet
    num_ranks: int = 1
    dt: float = 1e-3
    theta: float = 0.5
    gravity: float = 1.0
    softening: float = 1e-3
    steps_taken: int = 0
    _weights: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    _acc: np.ndarray = field(default=None, repr=False)      # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.num_ranks < 1:
            raise WorkloadError("need at least one rank")
        if self.dt <= 0:
            raise WorkloadError("dt must be positive")
        if self._weights is None:
            self._weights = np.ones(len(self.bodies))

    def step(self) -> StepStats:
        """One kick-drift-kick step; returns work-distribution diagnostics."""
        bodies = self.bodies
        n = len(bodies)
        # ORB repartition using last step's measured per-body work.
        assignment = orb_partition(bodies.positions, self._weights,
                                   self.num_ranks)
        if self._acc is None:
            self._acc = self._forces(assignment)[0]
        acc = self._acc
        bodies.velocities += 0.5 * self.dt * acc
        bodies.positions += self.dt * bodies.velocities
        new_acc, counts = self._forces(assignment)
        bodies.velocities += 0.5 * self.dt * new_acc
        self._acc = new_acc
        self._weights = np.maximum(counts.astype(float), 1.0)
        self.steps_taken += 1
        work = partition_weights(assignment, counts.astype(float),
                                 self.num_ranks)
        avg = work.mean() if work.mean() > 0 else 1.0
        return StepStats(step=self.steps_taken,
                         interactions_total=int(counts.sum()),
                         work_per_rank=work,
                         orb_imbalance=float(work.max() / avg))

    def _forces(self, assignment: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Forces computed partition-by-partition against the shared tree."""
        bodies = self.bodies
        tree = build_octree(bodies.positions, bodies.masses)
        acc = np.zeros((len(bodies), 3))
        counts = np.zeros(len(bodies), dtype=np.int64)
        for rank in range(self.num_ranks):
            targets = np.nonzero(assignment == rank)[0]
            if targets.size == 0:
                continue
            result = accelerations_barnes_hut(
                bodies.positions, bodies.masses, theta=self.theta,
                gravity=self.gravity, softening=self.softening,
                targets=targets, tree=tree)
            acc[targets] = result.accelerations
            counts[targets] = result.interactions
        return acc, counts

    def run(self, steps: int) -> list[StepStats]:
        """Advance *steps* timesteps; returns per-step diagnostics."""
        return [self.step() for _ in range(steps)]

    def validate_against_direct(self, tolerance: float = 0.05) -> float:
        """Relative BH-vs-direct force error (median over bodies)."""
        direct = accelerations_direct(self.bodies.positions, self.bodies.masses,
                                      self.gravity, self.softening)
        bh = accelerations_barnes_hut(self.bodies.positions, self.bodies.masses,
                                      theta=self.theta, gravity=self.gravity,
                                      softening=self.softening).accelerations
        err = np.linalg.norm(bh - direct, axis=1)
        scale = np.linalg.norm(direct, axis=1) + 1e-30
        median = float(np.median(err / scale))
        if median > tolerance:
            raise WorkloadError(
                f"Barnes–Hut error {median:.3f} exceeds tolerance {tolerance}")
        return median
