"""Distributed Barnes–Hut over the simulated MPI.

This is the closest analogue of the paper's actual n-body application: an
SPMD program in which every rank

1. receives the full body state (ring allgather on the simulated MPI,
   paying real simulated communication time for real numpy payloads);
2. repartitions with ORB using last step's measured per-body costs;
3. computes *real* Barnes–Hut forces for its own partition — and charges
   the simulated clock for them via the measured interaction counts (so a
   slow simulated node takes proportionally longer, exactly the effect
   ORB cannot see);
4. integrates its bodies (leapfrog) and feeds the next exchange.

The physics is bit-identical to :class:`~repro.apps.nbody.NBodySimulation`
run serially with the same parameters, which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from ...errors import WorkloadError
from ...mpisim.comm import RankComm
from ...mpisim.world import MpiWorld
from ...sim.engine import Timeout
from .bodies import BodySet
from .forces import accelerations_barnes_hut
from .octree import build_octree
from .orb import orb_partition

__all__ = ["DistributedNBodyConfig", "distributed_nbody_main",
           "run_distributed_nbody"]


@dataclass(frozen=True)
class DistributedNBodyConfig:
    """Parameters of one distributed run."""

    timesteps: int = 4
    dt: float = 1e-3
    theta: float = 0.5
    gravity: float = 1.0
    softening: float = 1e-3
    #: simulated seconds charged per Barnes–Hut interaction per core
    seconds_per_interaction: float = 2e-7
    #: cores available to each rank for the force loop
    cores_per_rank: int = 8

    def __post_init__(self) -> None:
        if self.timesteps < 1 or self.dt <= 0:
            raise WorkloadError("need timesteps >= 1 and dt > 0")
        if self.seconds_per_interaction <= 0 or self.cores_per_rank < 1:
            raise WorkloadError("invalid cost model")


def distributed_nbody_main(comm: RankComm, bodies: BodySet,
                           config: DistributedNBodyConfig,
                           node_speed: float = 1.0
                           ) -> Generator[Any, Any, dict]:
    """One rank's main. Every rank starts from the same *bodies* copy.

    Returns the final positions (every rank converges to the same state —
    SPMD with deterministic repartitioning) plus per-step diagnostics.
    """
    positions = bodies.positions.copy()
    velocities = bodies.velocities.copy()
    masses = bodies.masses.copy()
    n = len(masses)
    weights = np.ones(n)
    acc = None
    step_times: list[float] = []
    my_interactions: list[int] = []

    for _step in range(config.timesteps):
        t0 = comm.sim.now
        # ORB with last step's measured weights; rank 0 decides, broadcast
        # keeps every rank on the identical partition (as the real code's
        # deterministic parallel ORB does).
        if comm.rank == 0:
            assignment = orb_partition(positions, weights, comm.size)
        else:
            assignment = None
        assignment = yield from comm.bcast(assignment, root=0)
        mine = np.nonzero(assignment == comm.rank)[0]

        my_interactions.append(0)
        if acc is None:
            # First step: real forces at the initial positions, charged to
            # the simulated clock via the measured interaction counts.
            tree = build_octree(positions, masses)
            result = accelerations_barnes_hut(
                positions, masses, theta=config.theta,
                gravity=config.gravity, softening=config.softening,
                targets=mine, tree=tree)
            compute = (result.interactions.sum()
                       * config.seconds_per_interaction
                       / (config.cores_per_rank * node_speed))
            yield Timeout(float(compute))
            my_interactions[-1] += int(result.interactions.sum())
            acc = np.zeros((n, 3))
            gathered = yield from comm.allgather(
                (mine, result.accelerations))
            for ids, values in gathered:
                acc[ids] = values
        # leapfrog for my bodies
        velocities[mine] += 0.5 * config.dt * acc[mine]
        positions[mine] += config.dt * velocities[mine]

        # Exchange updated positions/velocities (real payloads, real cost).
        gathered = yield from comm.allgather(
            (mine, positions[mine], velocities[mine]))
        for ids, pos, vel in gathered:
            positions[ids] = pos
            velocities[ids] = vel

        # second force evaluation at the new positions (kick)
        tree = build_octree(positions, masses)
        result = accelerations_barnes_hut(
            positions, masses, theta=config.theta, gravity=config.gravity,
            softening=config.softening, targets=mine, tree=tree)
        compute = (result.interactions.sum() * config.seconds_per_interaction
                   / (config.cores_per_rank * node_speed))
        yield Timeout(float(compute))
        my_interactions[-1] += int(result.interactions.sum())
        new_acc = np.zeros((n, 3))
        new_acc[mine] = result.accelerations
        velocities[mine] += 0.5 * config.dt * new_acc[mine]

        gathered = yield from comm.allgather(
            (mine, velocities[mine], new_acc[mine],
             result.interactions.astype(float)))
        acc = np.zeros((n, 3))
        new_weights = np.ones(n)
        for ids, vel, accel, counts in gathered:
            velocities[ids] = vel
            acc[ids] = accel
            new_weights[ids] = np.maximum(counts, 1.0)
        weights = new_weights
        step_times.append(comm.sim.now - t0)

    return {
        "iteration_times": step_times,
        "positions": positions,
        "velocities": velocities,
        "interactions": my_interactions,
    }


def run_distributed_nbody(world: MpiWorld, bodies: BodySet,
                          config: DistributedNBodyConfig,
                          node_speeds: dict[int, float] | None = None
                          ) -> list[dict]:
    """Launch the distributed n-body across the world's ranks."""
    node_speeds = node_speeds or {}
    processes = []
    for rank in range(world.size):
        comm = world.world_comm.view(rank)
        speed = node_speeds.get(world.node_of(rank), 1.0)
        gen = distributed_nbody_main(comm, bodies.copy(), config, speed)
        processes.append(world.sim.spawn(gen, name=f"nbody-rank{rank}"))
    world.sim.run_all(processes)
    return [p.result for p in processes]
