"""Orthogonal Recursive Bisection (the n-body app's own balancer).

ORB recursively splits the body set along the widest coordinate axis at
the *weighted* median, so that each side carries (nearly) equal total
work weight; recursion yields any number of parts. The weights come from
measured per-body interaction counts — which is why ORB equalises *work*
but cannot see that a node executes that work slower (paper §7.1: "ORB
does not perform well" with a slow node; its "cost model does not adapt to
varying node performance").
"""

from __future__ import annotations

import numpy as np

from ...errors import WorkloadError

__all__ = ["orb_partition", "partition_weights"]


def orb_partition(positions: np.ndarray, weights: np.ndarray,
                  num_parts: int) -> np.ndarray:
    """Assign each body to one of *num_parts* partitions.

    Returns an (n,) integer array of partition ids in ``[0, num_parts)``.
    Handles any part count (not just powers of two) by splitting part
    counts ``k`` into ``ceil(k/2)`` / ``floor(k/2)`` with a proportional
    weight threshold.
    """
    n = positions.shape[0]
    if positions.shape != (n, 3) or weights.shape != (n,):
        raise WorkloadError("positions must be (n,3) and weights (n,)")
    if num_parts < 1:
        raise WorkloadError(f"need at least one part, got {num_parts}")
    if np.any(weights < 0):
        raise WorkloadError("weights must be non-negative")
    if num_parts > n:
        raise WorkloadError(f"cannot split {n} bodies into {num_parts} parts")
    assignment = np.empty(n, dtype=np.int64)

    def split(ids: np.ndarray, first_part: int, parts: int) -> None:
        if parts == 1:
            assignment[ids] = first_part
            return
        left_parts = (parts + 1) // 2
        target = left_parts / parts          # weight fraction for the left side
        axis = int(np.argmax(positions[ids].max(axis=0)
                             - positions[ids].min(axis=0)))
        order = ids[np.argsort(positions[ids, axis], kind="stable")]
        w = weights[order]
        total = w.sum()
        if total <= 0:
            # Unweighted fallback: split by count.
            cut = max(1, min(len(order) - 1,
                             int(round(len(order) * target))))
        else:
            cumulative = np.cumsum(w)
            cut = int(np.searchsorted(cumulative, target * total))
            cut = max(1, min(len(order) - 1, cut + 1))
        # Both sides must still be splittable into their part counts.
        cut = max(left_parts, min(len(order) - (parts - left_parts), cut))
        split(order[:cut], first_part, left_parts)
        split(order[cut:], first_part + left_parts, parts - left_parts)

    split(np.arange(n, dtype=np.int64), 0, num_parts)
    return assignment


def partition_weights(assignment: np.ndarray, weights: np.ndarray,
                      num_parts: int) -> np.ndarray:
    """Total weight per partition (for balance checks)."""
    if assignment.shape != weights.shape:
        raise WorkloadError("assignment and weights must align")
    return np.bincount(assignment, weights=weights, minlength=num_parts)
