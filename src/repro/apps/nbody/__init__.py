"""Barnes–Hut n-body with ORB: real implementation + simulator workload."""

from .bodies import BodySet, plummer_sphere, uniform_cube
from .distributed import (DistributedNBodyConfig, distributed_nbody_main,
                          run_distributed_nbody)
from .forces import ForceResult, accelerations_barnes_hut, accelerations_direct
from .octree import Octree, build_octree
from .orb import orb_partition, partition_weights
from .simulation import NBodySimulation, StepStats, total_energy
from .workload import (NBodySpec, apprank_loads, block_durations,
                       make_nbody_app, nbody_main, rank_residual)

__all__ = [
    "BodySet",
    "plummer_sphere",
    "uniform_cube",
    "Octree",
    "build_octree",
    "ForceResult",
    "accelerations_barnes_hut",
    "accelerations_direct",
    "orb_partition",
    "partition_weights",
    "NBodySimulation",
    "StepStats",
    "total_energy",
    "NBodySpec",
    "block_durations",
    "apprank_loads",
    "nbody_main",
    "make_nbody_app",
    "rank_residual",
    "DistributedNBodyConfig",
    "distributed_nbody_main",
    "run_distributed_nbody",
]
