"""Octree construction with mass/centre-of-mass aggregation (Barnes–Hut).

Flat-array tree: node *i* stores its cube (centre + half size), total mass,
centre of mass, its 8 child slots (-1 = absent), and — for leaves — the
indices of the bodies it holds (bucket leaves keep construction shallow
and the force loop fast).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import WorkloadError

__all__ = ["Octree", "build_octree"]

_OCTANT_SIGNS = np.array([
    [-1, -1, -1], [1, -1, -1], [-1, 1, -1], [1, 1, -1],
    [-1, -1, 1], [1, -1, 1], [-1, 1, 1], [1, 1, 1],
], dtype=float)


@dataclass
class Octree:
    """Flat Barnes–Hut tree over one body set."""

    centers: np.ndarray           # (num_nodes, 3)
    half_sizes: np.ndarray        # (num_nodes,)
    masses: np.ndarray            # (num_nodes,)
    coms: np.ndarray              # (num_nodes, 3) centres of mass
    children: np.ndarray          # (num_nodes, 8) node ids, -1 = none
    leaf_bodies: list[np.ndarray]  # per node: body ids (empty for internal)

    @property
    def num_nodes(self) -> int:
        return len(self.half_sizes)

    def is_leaf(self, node: int) -> bool:
        """Whether *node* has no children (holds bodies directly)."""
        return bool((self.children[node] < 0).all())

    def depth(self) -> int:
        """Maximum depth (root = 1), by traversal."""
        best = 0
        stack = [(0, 1)]
        while stack:
            node, d = stack.pop()
            best = max(best, d)
            for child in self.children[node]:
                if child >= 0:
                    stack.append((int(child), d + 1))
        return best

    def total_mass(self) -> float:
        """Mass aggregated at the root (== total body mass)."""
        return float(self.masses[0])


def build_octree(positions: np.ndarray, masses: np.ndarray,
                 leaf_size: int = 8, max_depth: int = 40) -> Octree:
    """Build the tree over all bodies.

    The root cube is the bounding cube of the positions (slightly padded).
    Subdivision stops at *leaf_size* bodies or *max_depth* (protecting
    against coincident points).
    """
    n = positions.shape[0]
    if n < 1:
        raise WorkloadError("cannot build an octree over zero bodies")
    if positions.shape != (n, 3) or masses.shape != (n,):
        raise WorkloadError("positions must be (n,3) and masses (n,)")
    if leaf_size < 1:
        raise WorkloadError("leaf_size must be >= 1")
    lo = positions.min(axis=0)
    hi = positions.max(axis=0)
    center = (lo + hi) / 2.0
    half = float(max((hi - lo).max() / 2.0, 1e-12)) * 1.0001

    centers: list[np.ndarray] = []
    halves: list[float] = []
    node_masses: list[float] = []
    coms: list[np.ndarray] = []
    children: list[np.ndarray] = []
    leaves: list[np.ndarray] = []

    def new_node(c: np.ndarray, h: float) -> int:
        centers.append(c)
        halves.append(h)
        node_masses.append(0.0)
        coms.append(np.zeros(3))
        children.append(np.full(8, -1, dtype=np.int64))
        leaves.append(np.empty(0, dtype=np.int64))
        return len(halves) - 1

    def build(node: int, body_ids: np.ndarray, depth: int) -> None:
        mass = masses[body_ids].sum()
        node_masses[node] = float(mass)
        coms[node] = (masses[body_ids, None]
                      * positions[body_ids]).sum(axis=0) / mass
        if len(body_ids) <= leaf_size or depth >= max_depth:
            leaves[node] = body_ids
            return
        c = centers[node]
        h = halves[node]
        octant = ((positions[body_ids, 0] >= c[0]).astype(int)
                  + 2 * (positions[body_ids, 1] >= c[1]).astype(int)
                  + 4 * (positions[body_ids, 2] >= c[2]).astype(int))
        for o in range(8):
            sub = body_ids[octant == o]
            if sub.size == 0:
                continue
            child_center = c + _OCTANT_SIGNS[o] * (h / 2.0)
            child = new_node(child_center, h / 2.0)
            children[node][o] = child
            build(child, sub, depth + 1)

    root = new_node(center, half)
    build(root, np.arange(n, dtype=np.int64), 1)
    return Octree(centers=np.asarray(centers), half_sizes=np.asarray(halves),
                  masses=np.asarray(node_masses), coms=np.asarray(coms),
                  children=np.asarray(children), leaf_bodies=leaves)
