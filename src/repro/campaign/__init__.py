"""Fault-tolerant campaign orchestrator (``python -m repro campaign``).

Shards a sweep grid — seeds x policies x cluster sizes x fault plans x
scales — across a master/worker process pool, and is itself resilient:
worker crashes, hangs and ``kill -9`` of the master are all survivable.
The pieces:

* :mod:`~repro.campaign.grid` — :class:`CampaignGrid` / :class:`Cell`:
  the declarative cross product, parsed from a compact CLI syntax;
* :mod:`~repro.campaign.cells` — :func:`run_cell`: one deterministic
  simulator run per cell, returning a JSON-safe result row;
* :mod:`~repro.campaign.journal` — :class:`CampaignJournal`: fsynced
  append-only JSONL with atomic compaction, the resume source of truth;
* :mod:`~repro.campaign.master` — :func:`run_campaign`: heartbeats,
  per-cell timeouts, crash requeue with exponential backoff, quarantine
  of poison cells, batched aggregation into one merged
  :class:`~repro.experiments.base.ResultTable`/CSV;
* :mod:`~repro.campaign.chaos` — :class:`ChaosPlan`: the built-in
  ``--chaos`` self-test (SIGKILLed workers, wedged cells) proving the
  recovery paths leave merged results bit-identical.
"""

from .cells import RESULT_COLUMNS, run_cell
from .chaos import ChaosPlan
from .grid import APPS, SCALES, CampaignGrid, Cell
from .journal import CampaignJournal
from .master import (JOURNAL_NAME, REPORT_NAME, RESULTS_NAME,
                     CampaignReport, run_campaign)

__all__ = [
    "CampaignGrid",
    "Cell",
    "SCALES",
    "APPS",
    "run_cell",
    "RESULT_COLUMNS",
    "CampaignJournal",
    "ChaosPlan",
    "run_campaign",
    "CampaignReport",
    "JOURNAL_NAME",
    "RESULTS_NAME",
    "REPORT_NAME",
]
