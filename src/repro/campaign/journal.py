"""Crash-safe campaign journal: resume exactly where a run stopped.

The journal is an append-only JSONL file. Every record is one line,
written with flush + fsync before the master acts on it, so a campaign
killed at *any* instant (including ``kill -9``) can be restarted and
will skip every cell whose ``done`` record reached disk — recomputing
nothing and double-counting nothing.

Crash-safety discipline:

* **Appends** are single ``write + flush + fsync`` calls on a file held
  open in append mode; a crash can at worst leave one truncated final
  line.
* **Recovery** tolerates exactly that: a trailing partial line is
  dropped, and the journal is immediately *compacted* — rewritten to a
  temp file and atomically renamed over the original
  (:func:`repro.ioutil.atomic_write_text`) — before appending resumes,
  so corruption can never accumulate.
* The first record carries the grid fingerprint; resuming against a
  *different* grid is refused with a one-line error instead of silently
  merging incompatible results.

Record kinds: ``campaign`` (header), ``done`` (cell result row),
``failed`` (cell raised), ``requeued`` (worker crash / hang / timeout),
``quarantined`` (cell abandoned after exhausting its budget).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Optional

from ..errors import CampaignError
from ..ioutil import atomic_write_text

__all__ = ["CampaignJournal"]

_VERSION = 1


class CampaignJournal:
    """Append-only on-disk record of one campaign's progress."""

    def __init__(self, path: Path, records: list[dict],
                 handle: Any) -> None:
        self.path = path
        self._handle = handle
        #: first recorded result row per completed cell id
        self.done: dict[str, dict] = {}
        #: error strings per cell id (cell raised — poison budget)
        self.failures: dict[str, list[str]] = {}
        #: interruption count per cell id (crash/hang/timeout requeues)
        self.requeues: dict[str, int] = {}
        #: cells abandoned after exhausting a budget -> reason record
        self.quarantined: dict[str, dict] = {}
        for record in records:
            self._absorb(record)

    # -- opening ---------------------------------------------------------

    @classmethod
    def open(cls, path: "Path | str", fingerprint: str,
             grid_spec: str) -> "CampaignJournal":
        """Create the journal, or load + compact it when resuming.

        Raises :class:`~repro.errors.CampaignError` when an existing
        journal was written for a different grid (fingerprint mismatch).
        """
        path = Path(path)
        if path.exists():
            records = cls._load_records(path)
            header = records[0] if records else None
            if (header is None or header.get("kind") != "campaign"
                    or "fingerprint" not in header):
                raise CampaignError(
                    f"journal {path} is not a campaign journal "
                    "(missing header); use a fresh --out directory")
            if header["fingerprint"] != fingerprint:
                raise CampaignError(
                    f"journal {path} was written for a different grid "
                    f"({header.get('grid', '?')!r}); resume with the "
                    "original grid or use a fresh --out directory")
            # compact: drop any truncated tail atomically before appending
            text = "".join(json.dumps(r, sort_keys=True) + "\n"
                           for r in records)
            atomic_write_text(path, text)
        else:
            records = []
            path.parent.mkdir(parents=True, exist_ok=True)
            header = {"kind": "campaign", "version": _VERSION,
                      "fingerprint": fingerprint, "grid": grid_spec}
            atomic_write_text(path, json.dumps(header, sort_keys=True) + "\n")
            records = [header]
        handle = open(path, "a", encoding="utf-8")
        return cls(path, records, handle)

    @staticmethod
    def _load_records(path: Path) -> list[dict]:
        """Parse the JSONL file, dropping a truncated trailing line."""
        records: list[dict] = []
        raw = path.read_bytes().decode("utf-8", errors="replace")
        lines = raw.split("\n")
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if i >= len(lines) - 2:
                    break       # partial final line from a crash: drop it
                raise CampaignError(
                    f"journal {path} is corrupt at line {i + 1}; "
                    "use a fresh --out directory") from None
            if not isinstance(record, dict):
                raise CampaignError(
                    f"journal {path} line {i + 1} is not a record")
            records.append(record)
        return records

    # -- state -----------------------------------------------------------

    def _absorb(self, record: dict) -> None:
        kind = record.get("kind")
        cell = record.get("cell")
        if kind == "done" and cell is not None:
            # first completion wins; duplicates are never double-counted
            self.done.setdefault(cell, record.get("row", {}))
        elif kind == "failed" and cell is not None:
            self.failures.setdefault(cell, []).append(
                record.get("error", ""))
        elif kind == "requeued" and cell is not None:
            self.requeues[cell] = self.requeues.get(cell, 0) + 1
        elif kind == "quarantined" and cell is not None:
            self.quarantined.setdefault(cell, record)

    # -- writing ---------------------------------------------------------

    def append(self, record: dict) -> None:
        """Durably append one record (write + flush + fsync) and absorb it."""
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._absorb(record)

    def record_done(self, cell_id: str, attempt: int, row: dict,
                    wall: float) -> None:
        """A cell completed; *row* is its deterministic result."""
        self.append({"kind": "done", "cell": cell_id, "attempt": attempt,
                     "wall": round(wall, 6), "row": row})

    def record_failed(self, cell_id: str, attempt: int, error: str) -> None:
        """A cell raised; counts toward its poison (quarantine) budget."""
        self.append({"kind": "failed", "cell": cell_id, "attempt": attempt,
                     "error": error})

    def record_requeued(self, cell_id: str, attempt: int,
                        reason: str) -> None:
        """A cell's worker crashed/hung/timed out; the cell is requeued."""
        self.append({"kind": "requeued", "cell": cell_id,
                     "attempt": attempt, "reason": reason})

    def record_quarantined(self, cell_id: str, reason: str,
                           errors: Optional[list[str]] = None) -> None:
        """A cell exhausted its budget and is abandoned (reported, not
        retried); the campaign completes without it."""
        self.append({"kind": "quarantined", "cell": cell_id,
                     "reason": reason, "errors": errors or []})

    def close(self) -> None:
        """Flush and close the append handle."""
        if self._handle is not None:
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except (OSError, ValueError):  # pragma: no cover - closed race
                pass
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
