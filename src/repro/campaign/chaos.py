"""Chaos self-test: prove the recovery paths on every campaign run.

``--chaos`` arms a seeded :class:`ChaosPlan` that injects two distinct
failure classes mid-campaign:

* **worker kills** — at planned completion counts the master SIGKILLs a
  busy worker (preferring one with a cell in flight), exercising crash
  detection, task requeue and respawn;
* **hung cells** — planned cells have their *first* attempt wedged (the
  worker sleeps before computing anything), exercising the per-cell
  wall-clock timeout, kill and clean retry.

Both injections strike *around* the computation, never inside it, and a
killed attempt writes nothing to the journal — so a chaos run's merged
results are bit-identical to a fault-free run of the same grid. That
equality is the campaign's recovery proof and is asserted by the tests
and the CI ``campaign-smoke`` job.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .grid import Cell

__all__ = ["ChaosPlan"]


@dataclass(frozen=True)
class ChaosPlan:
    """Deterministic (seeded) schedule of injected failures."""

    #: completion counts after which the master SIGKILLs one worker
    kill_after: tuple[int, ...]
    #: cell ids whose first attempt is wedged past the cell timeout
    hang_cells: frozenset[str]
    seed: int

    @classmethod
    def plan(cls, cells: list[Cell], seed: int = 0, kills: int = 1,
             hangs: int = 1) -> "ChaosPlan":
        """Pick kill points and hang victims for *cells* from *seed*.

        Kills are scheduled in the first half of the campaign so the
        recovery (requeue + respawn) is itself exercised before the end;
        tiny grids get at most one of each.
        """
        rng = random.Random(seed)
        n = len(cells)
        kills = max(0, min(kills, n // 2)) if n > 1 else 0
        hangs = max(0, min(hangs, n))
        window = range(1, max(2, n // 2 + 1))
        kill_after = tuple(sorted(rng.sample(window,
                                             min(kills, len(window)))))
        hang_cells = frozenset(
            cell.cell_id for cell in rng.sample(cells, hangs))
        return cls(kill_after=kill_after, hang_cells=hang_cells, seed=seed)

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing."""
        return not self.kill_after and not self.hang_cells
