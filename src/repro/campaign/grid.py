"""Campaign sweep grids: the cross product a campaign shards over.

A :class:`CampaignGrid` is a declarative description of a sweep —
seeds x offload policies x cluster sizes x fault plans x scales — parsed
from a compact ``key=value,...;key=value`` CLI syntax::

    app=synthetic;nodes=2,4;degree=1,2;imbalance=1.5,2.0;seed=0..4
    app=micropp;nodes=4,8;policy=tentative,locality;scale=small
    faults=none|crash:apprank=0,node=1,t=0.5+msg:loss=0.01

Axes are ``;``-separated; values are ``,``-separated except the
``faults`` axis, whose values are full :meth:`repro.faults.FaultPlan.parse`
specs (which themselves contain ``,`` and ``;``) — fault alternatives
are therefore ``|``-separated and use ``+`` where a plan would use
``;``. The ``trace`` axis follows the same convention for multi-job
arrival traces (:meth:`repro.jobs.trace.JobTrace.parse` specs):
alternatives are ``|``-separated and use ``+`` where a trace spec would
use ``,``, e.g. ``trace=poisson:seed=1+rate=0.5+n=6|bursty:seed=2+n=6``.
A cell with a trace runs the multi-job engine (the ``realloc``,
``nodes``, ``scale`` and ``seed`` axes apply; the single-application
axes are normalised away). Integer axes accept ``a..b`` ranges. Unknown
keys, unknown policy/scale/app names and malformed values all raise a
one-line :class:`~repro.errors.CampaignError` naming the offending
token.

The grid expands to an ordered list of :class:`Cell` — one simulator run
each, with a stable human-readable ``cell_id`` and a JSON round-trip —
and a content :meth:`~CampaignGrid.fingerprint` that ties an on-disk
journal to the grid that produced it.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import asdict, dataclass
from typing import Any, Iterator

from ..errors import CampaignError, FaultError
from ..experiments.base import MEDIUM, PAPER, SMALL, TINY, Scale
from ..faults.plan import FaultPlan

__all__ = ["Cell", "CampaignGrid", "SCALES", "APPS", "expand_fault_spec",
           "fault_tag", "expand_trace_spec", "trace_tag"]

#: Scales a campaign cell may run at, by grid-axis name.
SCALES: dict[str, Scale] = {"tiny": TINY, "small": SMALL, "medium": MEDIUM,
                            "paper": PAPER}

#: Applications a campaign cell may run.
APPS = ("synthetic", "micropp", "nbody")

#: Axis iteration order — also the nesting order of the cross product,
#: so cell order (and therefore journal/report order) is stable.
AXES = ("app", "scale", "nodes", "degree", "imbalance", "policy", "lend",
        "realloc", "faults", "trace", "seed")

_DEFAULTS: dict[str, tuple] = {
    "app": ("synthetic",),
    "scale": ("small",),
    "nodes": (4,),
    "degree": (2,),
    "imbalance": (2.0,),
    "policy": ("tentative",),
    "lend": ("eager",),
    "realloc": ("global",),
    "faults": ("none",),
    "trace": ("none",),
    "seed": (1234,),
}

_INT_AXES = {"nodes", "degree", "seed"}
_FLOAT_AXES = {"imbalance"}


def expand_fault_spec(token: str) -> str:
    """The grid fault syntax (``+`` joins) as a real FaultPlan spec."""
    return token.replace("+", ";")


def fault_tag(token: str) -> str:
    """Short stable tag for a fault alternative (CSV-safe column value)."""
    if token == "none":
        return "none"
    digest = hashlib.sha1(expand_fault_spec(token).encode()).hexdigest()
    return f"f{digest[:8]}"


def expand_trace_spec(token: str) -> str:
    """The grid trace syntax (``+`` joins) as a real JobTrace spec."""
    return token.replace("+", ",")


def trace_tag(token: str) -> str:
    """Short stable tag for a trace alternative (CSV-safe column value)."""
    if token == "none":
        return "none"
    digest = hashlib.sha1(expand_trace_spec(token).encode()).hexdigest()
    return f"t{digest[:8]}"


@dataclass(frozen=True)
class Cell:
    """One point of a campaign grid: a single deterministic simulator run."""

    app: str
    scale: str
    nodes: int
    degree: int
    imbalance: float
    policy: str
    lend: str
    realloc: str
    faults: str             # grid syntax ("none" or a '+'-joined plan)
    seed: int
    #: multi-job arrival trace in grid syntax ("none" = single-app cell)
    trace: str = "none"

    @property
    def cell_id(self) -> str:
        """Stable, human-readable identity used by journal and report."""
        base = (f"{self.app}:{self.scale}:n{self.nodes}:d{self.degree}"
                f":i{self.imbalance:g}:{self.policy}:{self.lend}"
                f":{self.realloc}:{fault_tag(self.faults)}:s{self.seed}")
        if self.trace != "none":
            return f"{base}:{trace_tag(self.trace)}"
        return base

    @property
    def fault_plan(self) -> "FaultPlan | None":
        """The parsed fault plan, or None for a fault-free cell."""
        if self.faults == "none":
            return None
        return FaultPlan.parse(expand_fault_spec(self.faults), seed=self.seed)

    def to_json(self) -> dict[str, Any]:
        """JSON-safe dict; inverse of :meth:`from_json`."""
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "Cell":
        """Rebuild a cell from :meth:`to_json` output."""
        return cls(**data)


def _parse_int_values(key: str, token: str) -> list[int]:
    values: list[int] = []
    for item in token.split(","):
        item = item.strip()
        if not item:
            continue
        if ".." in item:
            lo_s, _, hi_s = item.partition("..")
            try:
                lo, hi = int(lo_s), int(hi_s)
            except ValueError:
                raise CampaignError(
                    f"bad range {item!r} for grid key {key!r} "
                    "(expected a..b with integers)") from None
            if hi < lo:
                raise CampaignError(
                    f"empty range {item!r} for grid key {key!r}")
            values.extend(range(lo, hi + 1))
        else:
            try:
                values.append(int(item))
            except ValueError:
                raise CampaignError(
                    f"bad integer {item!r} for grid key {key!r}") from None
    return values


def _parse_axis(key: str, token: str) -> tuple:
    if key == "faults":
        values: list[Any] = []
        for alt in token.split("|"):
            alt = alt.strip()
            if not alt:
                continue
            if alt != "none":
                try:
                    FaultPlan.parse(expand_fault_spec(alt))
                except FaultError as exc:
                    raise CampaignError(
                        f"bad fault spec {alt!r} in grid: {exc}") from None
            values.append(alt)
    elif key == "trace":
        from ..errors import JobsError
        from ..jobs.trace import JobTrace
        values = []
        for alt in token.split("|"):
            alt = alt.strip()
            if not alt:
                continue
            if alt != "none":
                try:
                    JobTrace.parse(expand_trace_spec(alt))
                except JobsError as exc:
                    raise CampaignError(
                        f"bad trace spec {alt!r} in grid: {exc}") from None
            values.append(alt)
    elif key in _INT_AXES:
        values = list(_parse_int_values(key, token))
    elif key in _FLOAT_AXES:
        values = []
        for item in token.split(","):
            item = item.strip()
            if not item:
                continue
            try:
                values.append(float(item))
            except ValueError:
                raise CampaignError(
                    f"bad number {item!r} for grid key {key!r}") from None
    else:
        values = [item.strip() for item in token.split(",") if item.strip()]
    if not values:
        raise CampaignError(f"grid key {key!r} has no values")
    return tuple(values)


def _validate_axis(key: str, values: tuple) -> None:
    if key == "app":
        for app in values:
            if app not in APPS:
                raise CampaignError(f"unknown app {app!r} in grid "
                                    f"(known: {', '.join(APPS)})")
    elif key == "scale":
        for name in values:
            if name not in SCALES:
                raise CampaignError(
                    f"unknown scale {name!r} in grid "
                    f"(known: {', '.join(sorted(SCALES))})")
    elif key in ("policy", "lend", "realloc"):
        from ..policies import (LEND_POLICIES, OFFLOAD_POLICIES,
                                REALLOCATION_POLICIES)
        registry = {"policy": OFFLOAD_POLICIES, "lend": LEND_POLICIES,
                    "realloc": REALLOCATION_POLICIES}[key]
        for name in values:
            if name not in registry:
                raise CampaignError(
                    f"unknown {registry.kind} policy {name!r} in grid "
                    f"(registered: {', '.join(registry.names())})")
    elif key in ("nodes", "degree"):
        for v in values:
            if v < 1:
                raise CampaignError(f"grid key {key!r} needs values >= 1, "
                                    f"got {v}")
    elif key == "seed":
        for v in values:
            if v < 0:
                raise CampaignError(f"negative seed {v} in grid")
    elif key == "imbalance":
        for v in values:
            if v < 1.0:
                raise CampaignError(f"imbalance must be >= 1, got {v:g}")


@dataclass(frozen=True)
class CampaignGrid:
    """A validated sweep description; expand with :meth:`cells`."""

    axes: tuple[tuple[str, tuple], ...]     # in AXES order
    spec: str                               # the original CLI spec

    @classmethod
    def parse(cls, spec: str) -> "CampaignGrid":
        """Parse the ``key=value,...;key=...`` grid syntax (module doc)."""
        given: dict[str, tuple] = {}
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            key, sep, token = part.partition("=")
            key = key.strip()
            if not sep:
                raise CampaignError(
                    f"malformed grid axis {part!r} (expected key=value,...)")
            if key not in AXES:
                raise CampaignError(
                    f"unknown campaign-grid key {key!r} "
                    f"(known: {', '.join(AXES)})")
            if key in given:
                raise CampaignError(f"duplicate grid key {key!r}")
            values = _parse_axis(key, token)
            _validate_axis(key, values)
            given[key] = values
        axes = tuple((key, given.get(key, _DEFAULTS[key])) for key in AXES)
        grid = cls(axes=axes, spec=spec)
        if not grid.cells():
            raise CampaignError(
                f"grid {spec!r} expands to zero feasible cells "
                "(every combination was infeasible: degree > nodes, "
                "imbalance > nodes, or too few cores per node for the "
                "degree)")
        return grid

    def axis(self, key: str) -> tuple:
        """The values of one axis."""
        for name, values in self.axes:
            if name == key:
                return values
        raise CampaignError(f"unknown campaign-grid key {key!r}")

    def cells(self) -> list[Cell]:
        """The feasible cells, in stable cross-product order.

        Infeasible combinations are skipped with the same rules the
        sweep figures use: ``degree > nodes``, synthetic
        ``imbalance > nodes``, and degrees the scale's cores-per-node
        cannot host (the DLB one-core floor). For non-synthetic apps the
        imbalance axis does not apply; those cells are normalised to
        ``imbalance=0`` and de-duplicated.
        """
        keys = [key for key, _ in self.axes]
        pools = [values for _, values in self.axes]
        seen: set[str] = set()
        cells: list[Cell] = []
        for combo in itertools.product(*pools):
            params = dict(zip(keys, combo))
            scale = SCALES[params["scale"]]
            if params["trace"] != "none":
                # multi-job cell: the single-application axes do not
                # apply — normalise them so the app/degree/... pools
                # collapse into one jobs cell per (trace, realloc,
                # nodes, scale, seed) point
                params.update(app="jobs", degree=0, imbalance=0.0,
                              policy="-", lend="-", faults="none")
                cell = Cell(**params)
                if cell.cell_id not in seen:
                    seen.add(cell.cell_id)
                    cells.append(cell)
                continue
            if params["degree"] > params["nodes"]:
                continue
            if params["degree"] > 1 and not scale.feasible(
                    params["degree"], 1):
                continue
            if params["app"] == "synthetic":
                if params["imbalance"] > params["nodes"]:
                    continue
            else:
                params["imbalance"] = 0.0
            if params["degree"] == 1:
                # degree 1 is the single-node-DLB reference: the
                # reallocation axis does not apply (always "local")
                params["realloc"] = "local"
            cell = Cell(**params)
            if cell.cell_id in seen:
                continue
            seen.add(cell.cell_id)
            cells.append(cell)
        return cells

    def fingerprint(self) -> str:
        """Content hash tying a journal to the grid that produced it.

        The default (trace-free) ``trace`` axis is omitted so journals
        written before the axis existed still match their grid.
        """
        canonical = json.dumps([[k, list(v)] for k, v in self.axes
                                if not (k == "trace" and v == ("none",))],
                               sort_keys=True)
        return hashlib.sha256(("campaign-grid-v1:" + canonical)
                              .encode()).hexdigest()

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells())

    def __len__(self) -> int:
        return len(self.cells())
