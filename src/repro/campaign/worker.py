"""Campaign worker process: run cells, heartbeat, report, repeat.

Each worker is one OS process (spawned, so it holds no master state).
It consumes task messages from its private queue, runs each cell with
:func:`repro.campaign.cells.run_cell`, and reports on the shared result
queue. A daemon heartbeat thread beats every ``heartbeat_interval``
seconds even while a cell is running, so the master can tell a *slow*
worker (beating, within its cell deadline) from a *wedged* one (no
beats: swapped out, deadlocked, or SIGSTOPped) — the latter is killed
and its cell requeued.

Workers ignore SIGINT: on Ctrl-C the whole foreground process group
gets the signal, and shutdown must stay the master's decision so the
journal is flushed and the resume command printed exactly once.

Message protocol (tuples on the result queue, worker uid first):

* ``("beat", uid)`` — liveness, also sent while a cell runs
* ``("started", uid, cell_id, attempt)``
* ``("done", uid, cell_id, attempt, row, wall_seconds)``
* ``("failed", uid, cell_id, attempt, error)``
* ``("exiting", uid)`` — acknowledges the poison pill

A task message is ``{"cell": <Cell.to_json()>, "attempt": n}`` plus an
optional ``"hang"`` duration the chaos self-test uses to wedge the cell
*before* it computes anything — the master's per-cell timeout must
detect and kill it, and the clean retry proves results are unaffected.
``None`` is the poison pill.
"""

from __future__ import annotations

import signal
import threading
import time
from typing import Any

__all__ = ["worker_main"]


def _heartbeat(result_queue: Any, uid: int, interval: float,
               stop: threading.Event) -> None:
    while not stop.wait(interval):
        try:
            result_queue.put(("beat", uid))
        except (OSError, ValueError):  # pragma: no cover - master gone
            return


def worker_main(uid: int, task_queue: Any, result_queue: Any,
                check: bool = False,
                heartbeat_interval: float = 0.5) -> None:
    """Entry point of one worker process (see module doc)."""
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:  # pragma: no cover - non-main thread (tests)
        pass
    stop = threading.Event()
    beat = threading.Thread(target=_heartbeat, daemon=True,
                            args=(result_queue, uid, heartbeat_interval,
                                  stop))
    beat.start()
    # imported here so a worker that dies on import still reports cleanly
    from .cells import run_cell
    from .grid import Cell
    try:
        while True:
            message = task_queue.get()
            if message is None:
                result_queue.put(("exiting", uid))
                return
            cell = Cell.from_json(message["cell"])
            attempt = int(message["attempt"])
            result_queue.put(("started", uid, cell.cell_id, attempt))
            hang = float(message.get("hang") or 0.0)
            if hang > 0:
                time.sleep(hang)    # chaos: wedge until the master kills us
            begun = time.monotonic()
            try:
                row = run_cell(cell, check=check)
            except Exception as exc:
                result_queue.put(("failed", uid, cell.cell_id, attempt,
                                  f"{type(exc).__name__}: {exc}"))
            else:
                result_queue.put(("done", uid, cell.cell_id, attempt, row,
                                  time.monotonic() - begun))
    finally:
        stop.set()
