"""Fault-tolerant master/worker campaign orchestrator.

:func:`run_campaign` shards a :class:`~repro.campaign.grid.CampaignGrid`
across a pool of worker processes through a dynamic master/worker queue
(the ``dlp_mpi``-style pattern: the master hands out one cell at a time,
so fast workers naturally take more cells) and survives everything the
workers can do to it:

* **crash detection** — a worker that dies (OOM kill, segfault, chaos
  SIGKILL) is detected by process liveness; its in-flight cell is
  requeued with exponential backoff and a fresh worker is spawned;
* **hang detection** — workers heartbeat every ``heartbeat_interval``
  even while computing; a silent worker (``heartbeat_timeout``) or a
  cell past its ``cell_timeout`` wall-clock deadline is SIGKILLed and
  the cell requeued;
* **quarantine** — a cell that *raises* ``max_failures`` times, or is
  interrupted ``max_requeues`` times, is abandoned and reported; the
  campaign completes instead of dying (graceful degradation);
* **crash-safe journal** — every completion is fsynced to the
  :class:`~repro.campaign.journal.CampaignJournal` before the master
  acts on it, so a killed or interrupted campaign resumes exactly where
  it stopped, recomputing nothing and double-counting nothing;
* **Ctrl-C** — workers are killed, the journal flushed, and the report
  flags the interruption so the CLI can print the resume command and
  exit 130.

Progress and retry counters thread through :mod:`repro.obs`: the master
owns a :class:`~repro.obs.metrics.MetricsRegistry` (per-cell wall-clock
histogram, per-worker completion counters, retry/requeue/quarantine and
chaos-injection totals) whose snapshot lands in ``report.json`` and the
final :class:`CampaignReport`.

Because every cell is a deterministic simulator run whose recorded row
contains only simulated quantities, the merged report of a chaos-ridden
campaign is bit-identical to a fault-free one — the property the
``--chaos`` self-test and CI smoke job assert.
"""

from __future__ import annotations

import heapq
import json
import multiprocessing
import os
import queue as queue_module
import random
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from ..errors import CampaignError
from ..experiments.base import ResultTable
from ..ioutil import atomic_write_text
from ..obs.metrics import MetricsRegistry
from .cells import RESULT_COLUMNS
from .chaos import ChaosPlan
from .grid import CampaignGrid, Cell, expand_fault_spec, fault_tag
from .journal import CampaignJournal
from .worker import worker_main

__all__ = ["run_campaign", "CampaignReport", "JOURNAL_NAME", "RESULTS_NAME",
           "REPORT_NAME"]

JOURNAL_NAME = "journal.jsonl"
RESULTS_NAME = "results.csv"
REPORT_NAME = "report.json"

_POLL = 0.05                    # master loop tick, seconds
_BACKOFF_MAX = 30.0


@dataclass
class CampaignReport:
    """Everything one campaign run produced (merged + diagnostics)."""

    table: ResultTable
    total: int
    completed: int
    computed: int               # cells computed by *this* run
    resumed: int                # cells skipped thanks to the journal
    quarantined: dict[str, dict]
    metrics: dict[str, Any]
    interrupted: bool
    out_dir: Path
    csv_path: Optional[Path]
    #: wall-clock accounting of *this* run: total seconds, cells/sec,
    #: per-cell mean/p95 and worker utilization (busy / capacity)
    wall_clock: dict[str, Any] = field(default_factory=dict)

    @property
    def exit_code(self) -> int:
        """0 complete, 3 with quarantined cells, 130 when interrupted."""
        if self.interrupted:
            return 130
        return 3 if self.quarantined else 0

    def summary(self) -> str:
        """One-line machine-greppable outcome."""
        counters = self.metrics.get("counters", {})
        return (f"# campaign: {self.total} cells, {self.resumed} from "
                f"journal, {self.computed} computed, "
                f"{len(self.quarantined)} quarantined, "
                f"{int(counters.get('campaign.retries', 0))} retries, "
                f"{int(counters.get('campaign.requeues', 0))} requeues, "
                f"{int(counters.get('campaign.workers_crashed', 0))} worker "
                f"crashes, "
                f"{int(counters.get('campaign.workers_killed', 0))} workers "
                f"killed")

    def format(self) -> str:
        """The merged table plus the outcome summary."""
        lines = [self.table.format(), self.summary()]
        for cell_id, record in sorted(self.quarantined.items()):
            lines.append(f"# quarantined: {cell_id} — "
                         f"{record.get('reason', 'unknown')}")
        return "\n".join(lines)


@dataclass
class _Worker:
    """One live incarnation of a worker slot."""

    slot: int
    uid: int
    proc: Any
    task_queue: Any
    last_seen: float
    assignment: Optional[tuple[Cell, int, float]] = None   # cell, attempt, t0

    @property
    def busy(self) -> bool:
        return self.assignment is not None


@dataclass
class _Pending:
    """The retry-aware work queue (min-heap on ready time)."""

    heap: list[tuple[float, int, Cell]] = field(default_factory=list)
    seq: int = 0

    def push(self, cell: Cell, ready_at: float) -> None:
        heapq.heappush(self.heap, (ready_at, self.seq, cell))
        self.seq += 1

    def pop_ready(self, now: float, skip: Callable[[str], bool]
                  ) -> Optional[Cell]:
        """The first cell whose backoff has elapsed and that still needs
        running; entries for finished cells are dropped on the way."""
        while self.heap:
            ready_at, _seq, cell = self.heap[0]
            if skip(cell.cell_id):
                heapq.heappop(self.heap)
                continue
            if ready_at > now:
                return None
            heapq.heappop(self.heap)
            return cell
        return None

    def __len__(self) -> int:
        return len(self.heap)


class _Master:
    """State machine of one campaign run (see module doc)."""

    def __init__(self, grid: CampaignGrid, out_dir: Path, workers: int,
                 cell_timeout: float, heartbeat_interval: float,
                 heartbeat_timeout: float, max_failures: int,
                 max_requeues: int, backoff_base: float, check: bool,
                 chaos: Optional[ChaosPlan],
                 progress: Optional[Callable[[dict], None]]) -> None:
        self.grid = grid
        self.out_dir = Path(out_dir)
        self.cells = grid.cells()
        self.by_id = {cell.cell_id: cell for cell in self.cells}
        self.num_workers = max(1, min(workers, len(self.cells)))
        self.cell_timeout = cell_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.max_failures = max_failures
        self.max_requeues = max_requeues
        self.backoff_base = backoff_base
        self.check = check
        self.chaos = chaos
        self.progress = progress
        self.metrics = MetricsRegistry()
        self.ctx = multiprocessing.get_context("spawn")
        self.result_queue = self.ctx.Queue()
        self.slots: dict[int, _Worker] = {}
        self.by_uid: dict[int, _Worker] = {}
        self.next_uid = 0
        self.pending = _Pending()
        self.hang_injected: set[str] = set()
        self.kill_points: list[int] = list(chaos.kill_after) if chaos else []
        self.completions_this_run = 0
        self.journal: Optional[CampaignJournal] = None
        self.resumed = 0
        self.interrupted = False
        #: wall-clock bookkeeping for the progress line and report
        self.wall_started: Optional[float] = None
        self.busy_seconds = 0.0

    # -- events ----------------------------------------------------------

    def emit(self, event: str, **fields: Any) -> None:
        if self.progress is not None:
            fields["event"] = event
            self.progress(fields)

    # -- worker lifecycle ------------------------------------------------

    def spawn_worker(self, slot: int) -> _Worker:
        uid = self.next_uid
        self.next_uid += 1
        task_queue = self.ctx.Queue()
        proc = self.ctx.Process(
            target=worker_main,
            args=(uid, task_queue, self.result_queue, self.check,
                  self.heartbeat_interval),
            name=f"campaign-worker-{slot}", daemon=True)
        proc.start()
        worker = _Worker(slot=slot, uid=uid, proc=proc,
                         task_queue=task_queue, last_seen=time.monotonic())
        self.slots[slot] = worker
        self.by_uid[uid] = worker
        self.metrics.counter("campaign.workers_spawned").add()
        self.metrics.gauge("campaign.workers_alive").set(
            sum(1 for w in self.slots.values() if w.proc.is_alive()))
        self.emit("spawn", slot=slot, worker=uid, pid=proc.pid)
        return worker

    def kill_worker(self, worker: _Worker, reason: str) -> None:
        """SIGKILL an incarnation (hung, timed out, or chaos victim)."""
        if worker.proc.is_alive() and worker.proc.pid is not None:
            try:
                os.kill(worker.proc.pid, signal.SIGKILL)
            except (ProcessLookupError, OSError):  # pragma: no cover
                pass
        worker.proc.join(5)
        self.metrics.counter("campaign.workers_killed").add()
        self.emit("kill", slot=worker.slot, worker=worker.uid,
                  reason=reason)
        worker.task_queue.cancel_join_thread()
        worker.task_queue.close()

    def shutdown_workers(self, graceful: bool) -> None:
        for worker in list(self.slots.values()):
            if graceful and worker.proc.is_alive():
                try:
                    worker.task_queue.put(None)
                except (OSError, ValueError):  # pragma: no cover
                    pass
        deadline = time.monotonic() + (2.0 if graceful else 0.0)
        for worker in list(self.slots.values()):
            worker.proc.join(max(0.0, deadline - time.monotonic()))
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(1)
            if worker.proc.is_alive():       # pragma: no cover - stubborn
                worker.proc.kill()
                worker.proc.join(1)
            worker.task_queue.cancel_join_thread()
            worker.task_queue.close()
        self.metrics.gauge("campaign.workers_alive").set(0)

    # -- cell accounting -------------------------------------------------

    def attempts_of(self, cell_id: str) -> int:
        journal = self.journal
        assert journal is not None
        return (len(journal.failures.get(cell_id, []))
                + journal.requeues.get(cell_id, 0))

    def finished(self, cell_id: str) -> bool:
        journal = self.journal
        assert journal is not None
        return cell_id in journal.done or cell_id in journal.quarantined

    def backoff(self, cell_id: str) -> float:
        attempts = max(1, self.attempts_of(cell_id))
        return min(_BACKOFF_MAX, self.backoff_base * 2 ** (attempts - 1))

    def requeue_interrupted(self, cell: Cell, attempt: int,
                            reason: str) -> None:
        """A worker died/hung/timed out under *cell*: retry or quarantine."""
        journal = self.journal
        assert journal is not None
        journal.record_requeued(cell.cell_id, attempt, reason)
        self.metrics.counter("campaign.requeues").add()
        self.emit("requeued", cell=cell.cell_id, attempt=attempt,
                  reason=reason)
        if journal.requeues.get(cell.cell_id, 0) > self.max_requeues:
            journal.record_quarantined(
                cell.cell_id,
                f"interrupted {journal.requeues[cell.cell_id]} times "
                f"(last: {reason}); exceeds --max-requeues="
                f"{self.max_requeues}")
            self.metrics.counter("campaign.quarantined").add()
            self.emit("quarantined", cell=cell.cell_id, reason=reason)
        else:
            self.pending.push(cell,
                              time.monotonic() + self.backoff(cell.cell_id))

    def record_failure(self, cell: Cell, attempt: int, error: str) -> None:
        """The cell itself raised: poison budget, then backoff retry."""
        journal = self.journal
        assert journal is not None
        journal.record_failed(cell.cell_id, attempt, error)
        self.metrics.counter("campaign.cells_failed").add()
        self.emit("failed", cell=cell.cell_id, attempt=attempt, error=error)
        failures = journal.failures.get(cell.cell_id, [])
        if len(failures) >= self.max_failures:
            journal.record_quarantined(
                cell.cell_id,
                f"failed {len(failures)} times; exceeds --max-failures="
                f"{self.max_failures} (last error: {error})",
                errors=failures)
            self.metrics.counter("campaign.quarantined").add()
            self.emit("quarantined", cell=cell.cell_id, reason=error)
        else:
            self.metrics.counter("campaign.retries").add()
            self.pending.push(cell,
                              time.monotonic() + self.backoff(cell.cell_id))

    def record_done(self, uid: int, cell_id: str, attempt: int, row: dict,
                    wall: float) -> None:
        journal = self.journal
        assert journal is not None
        if cell_id in journal.done:
            # late result from a worker we already timed out: drop it —
            # never double-count a cell
            self.metrics.counter("campaign.duplicate_results").add()
            return
        journal.record_done(cell_id, attempt, row, wall)
        self.completions_this_run += 1
        self.busy_seconds += wall
        self.metrics.counter("campaign.cells_done").add()
        self.metrics.histogram("campaign.cell_seconds").observe(wall)
        worker = self.by_uid.get(uid)
        if worker is not None:
            self.metrics.counter(
                f"campaign.worker.{worker.slot}.cells_done").add()
        # Throughput + ETA over this run's wall clock (resumed cells cost
        # nothing, so the rate only counts cells actually computed here).
        rate = None
        eta = None
        if self.wall_started is not None:
            elapsed = time.monotonic() - self.wall_started
            if elapsed > 0:
                rate = self.completions_this_run / elapsed
                remaining = (len(self.cells) - len(journal.done)
                             - len(journal.quarantined))
                eta = remaining / rate if rate > 0 else None
        self.emit("done", cell=cell_id, attempt=attempt, wall=wall,
                  completed=len(journal.done),
                  total=len(self.cells),
                  cells_per_sec=rate, eta=eta)

    # -- chaos -----------------------------------------------------------

    def maybe_unleash_chaos(self) -> None:
        if not self.kill_points or self.chaos is None:
            return
        if self.completions_this_run < self.kill_points[0]:
            return
        self.kill_points.pop(0)
        rng = random.Random(self.chaos.seed * 7919
                            + self.completions_this_run)
        candidates = [w for w in self.slots.values()
                      if w.proc.is_alive() and w.busy]
        if not candidates:
            candidates = [w for w in self.slots.values()
                          if w.proc.is_alive()]
        if not candidates:
            return
        victim = rng.choice(candidates)
        self.metrics.counter("campaign.chaos_kills").add()
        self.emit("chaos-kill", slot=victim.slot, worker=victim.uid)
        if victim.proc.pid is not None:
            try:
                os.kill(victim.proc.pid, signal.SIGKILL)
            except (ProcessLookupError, OSError):  # pragma: no cover
                pass
        # liveness pass picks up the corpse: requeue + respawn

    # -- the loop --------------------------------------------------------

    def drain_results(self) -> None:
        block = True
        while True:
            try:
                message = self.result_queue.get(
                    timeout=_POLL if block else 0.0)
            except queue_module.Empty:
                return
            block = False
            kind, uid = message[0], message[1]
            worker = self.by_uid.get(uid)
            current = worker is not None and self.slots.get(
                worker.slot) is worker
            if worker is not None and current:
                worker.last_seen = time.monotonic()
            if kind in ("beat", "exiting"):
                continue
            if kind == "started":
                continue
            cell_id, attempt = message[2], message[3]
            if kind == "done":
                row, wall = message[4], message[5]
                self.record_done(uid, cell_id, attempt, row, wall)
                self.maybe_unleash_chaos()
            elif kind == "failed":
                if not (current and worker is not None and worker.assignment
                        and worker.assignment[0].cell_id == cell_id):
                    continue    # stale failure: already requeued as crash
                error = message[4]
                self.record_failure(worker.assignment[0], attempt, error)
            if (current and worker is not None and worker.assignment
                    and worker.assignment[0].cell_id == cell_id):
                worker.assignment = None

    def check_liveness(self) -> None:
        now = time.monotonic()
        for slot, worker in list(self.slots.items()):
            if not worker.proc.is_alive():
                worker.proc.join(0)
                self.metrics.counter("campaign.workers_crashed").add()
                self.emit("crash", slot=slot, worker=worker.uid)
                if worker.assignment is not None:
                    cell, attempt, _ = worker.assignment
                    worker.assignment = None
                    if not self.finished(cell.cell_id):
                        self.requeue_interrupted(cell, attempt, "crash")
                worker.task_queue.cancel_join_thread()
                worker.task_queue.close()
                del self.slots[slot]
                if self.work_remains():
                    self.spawn_worker(slot)
                continue
            if worker.assignment is not None:
                cell, attempt, assigned_at = worker.assignment
                if now - assigned_at > self.cell_timeout:
                    self.metrics.counter("campaign.cells_timed_out").add()
                    worker.assignment = None
                    self.kill_worker(worker, "cell-timeout")
                    del self.slots[slot]
                    if not self.finished(cell.cell_id):
                        self.requeue_interrupted(cell, attempt, "timeout")
                    if self.work_remains():
                        self.spawn_worker(slot)
                    continue
            if now - worker.last_seen > self.heartbeat_timeout:
                self.metrics.counter("campaign.workers_hung").add()
                assignment = worker.assignment
                worker.assignment = None
                self.kill_worker(worker, "heartbeat-lost")
                del self.slots[slot]
                if assignment is not None:
                    cell, attempt, _ = assignment
                    if not self.finished(cell.cell_id):
                        self.requeue_interrupted(cell, attempt, "hung")
                if self.work_remains():
                    self.spawn_worker(slot)

    def work_remains(self) -> bool:
        journal = self.journal
        assert journal is not None
        return (len(journal.done) + len(journal.quarantined)
                < len(self.cells))

    def assign_work(self) -> None:
        now = time.monotonic()
        for worker in self.slots.values():
            if worker.busy or not worker.proc.is_alive():
                continue
            cell = self.pending.pop_ready(now, self.finished)
            if cell is None:
                return
            attempt = self.attempts_of(cell.cell_id) + 1
            message: dict[str, Any] = {"cell": cell.to_json(),
                                       "attempt": attempt}
            if (self.chaos is not None
                    and cell.cell_id in self.chaos.hang_cells
                    and cell.cell_id not in self.hang_injected):
                self.hang_injected.add(cell.cell_id)
                message["hang"] = self.cell_timeout * 20 + 60
                self.metrics.counter("campaign.chaos_hangs").add()
                self.emit("chaos-hang", cell=cell.cell_id,
                          worker=worker.uid)
            worker.assignment = (cell, attempt, now)
            worker.task_queue.put(message)
            self.emit("assign", cell=cell.cell_id, attempt=attempt,
                      worker=worker.uid)

    def run(self) -> CampaignReport:
        self.wall_started = time.monotonic()
        self.out_dir.mkdir(parents=True, exist_ok=True)
        journal = CampaignJournal.open(self.out_dir / JOURNAL_NAME,
                                       self.grid.fingerprint(),
                                       self.grid.spec)
        self.journal = journal
        self.resumed = sum(1 for cell in self.cells
                           if cell.cell_id in journal.done
                           or cell.cell_id in journal.quarantined)
        if self.resumed:
            self.emit("resume", resumed=self.resumed,
                      total=len(self.cells))
        for cell in self.cells:
            if not self.finished(cell.cell_id):
                self.pending.push(cell, 0.0)
        try:
            if self.work_remains():
                for slot in range(self.num_workers):
                    self.spawn_worker(slot)
            while self.work_remains():
                self.drain_results()
                self.check_liveness()
                self.assign_work()
        except KeyboardInterrupt:
            self.interrupted = True
            self.shutdown_workers(graceful=False)
        else:
            self.shutdown_workers(graceful=True)
        finally:
            journal.close()
        return self.build_report()

    # -- reporting -------------------------------------------------------

    def build_report(self) -> CampaignReport:
        journal = self.journal
        assert journal is not None
        table = ResultTable(
            title=f"Campaign results ({len(self.cells)} cells, "
                  f"grid {self.grid.fingerprint()[:12]})",
            columns=list(RESULT_COLUMNS))
        for cell in self.cells:
            row = journal.done.get(cell.cell_id)
            if row is not None:
                table.add(**{c: row.get(c) for c in RESULT_COLUMNS})
        for token in self.grid.axis("faults"):
            if token != "none":
                table.note(f"faults {fault_tag(token)} = "
                           f"{expand_fault_spec(token)}")
        if journal.quarantined:
            table.note(f"{len(journal.quarantined)} cells quarantined "
                       "(excluded from rows; see report.json)")
        csv_path = self.out_dir / RESULTS_NAME
        atomic_write_text(csv_path, table.to_csv() + "\n")
        report = CampaignReport(
            table=table, total=len(self.cells), completed=len(journal.done),
            computed=self.completions_this_run, resumed=self.resumed,
            quarantined=dict(journal.quarantined),
            metrics=self.metrics.snapshot(), interrupted=self.interrupted,
            out_dir=self.out_dir, csv_path=csv_path,
            wall_clock=self.wall_clock_section())
        atomic_write_text(
            self.out_dir / REPORT_NAME,
            json.dumps({
                "grid": self.grid.spec,
                "fingerprint": self.grid.fingerprint(),
                "total": report.total,
                "completed": report.completed,
                "computed": report.computed,
                "resumed": report.resumed,
                "interrupted": report.interrupted,
                "quarantined": report.quarantined,
                "metrics": report.metrics,
                "wall_clock": report.wall_clock,
            }, indent=2, sort_keys=True) + "\n")
        return report

    def wall_clock_section(self) -> dict[str, Any]:
        """Wall-clock accounting of this run for ``report.json``.

        ``worker_utilization`` is the summed in-cell seconds over the
        pool's wall-clock capacity — how much of the campaign the
        workers spent simulating rather than idle or respawning.
        """
        total = (time.monotonic() - self.wall_started
                 if self.wall_started is not None else 0.0)
        hist = self.metrics.histogram("campaign.cell_seconds")
        capacity = total * self.num_workers
        return {
            "total_s": total,
            "cells_per_sec": (self.completions_this_run / total
                              if total > 0 else 0.0),
            "cell_seconds": {
                "mean": hist.mean,
                "p95": hist.quantile(0.95) if hist.count else 0.0,
            },
            "worker_utilization": (self.busy_seconds / capacity
                                   if capacity > 0 else 0.0),
        }


def run_campaign(grid: CampaignGrid, out_dir: "Path | str",
                 workers: int = 2, cell_timeout: float = 300.0,
                 heartbeat_interval: float = 0.5,
                 heartbeat_timeout: float = 60.0,
                 max_failures: int = 3, max_requeues: int = 10,
                 backoff_base: float = 0.25, check: bool = False,
                 chaos: "ChaosPlan | bool | None" = None,
                 chaos_seed: int = 0,
                 progress: Optional[Callable[[dict], None]] = None
                 ) -> CampaignReport:
    """Run (or resume) a campaign; returns the merged report.

    *out_dir* holds the journal, ``results.csv`` and ``report.json``; an
    existing journal for the same grid is resumed (completed cells are
    skipped), a journal for a different grid is refused. *chaos* arms
    the self-test: ``True`` plans one worker kill and one hung cell from
    *chaos_seed*; pass a :class:`~repro.campaign.chaos.ChaosPlan` for
    full control. *progress*, when given, receives one dict per
    orchestration event (spawn/assign/done/failed/requeued/kill/...).
    """
    if workers < 1:
        raise CampaignError(f"need at least one worker, got {workers}")
    if cell_timeout <= 0:
        raise CampaignError(f"cell timeout must be > 0, got {cell_timeout}")
    if max_failures < 1 or max_requeues < 0:
        raise CampaignError("retry budgets must be positive")
    plan: Optional[ChaosPlan]
    if chaos is True:
        plan = ChaosPlan.plan(grid.cells(), seed=chaos_seed)
    elif chaos is False:
        plan = None
    else:
        plan = chaos
    master = _Master(grid=grid, out_dir=Path(out_dir), workers=workers,
                     cell_timeout=cell_timeout,
                     heartbeat_interval=heartbeat_interval,
                     heartbeat_timeout=heartbeat_timeout,
                     max_failures=max_failures, max_requeues=max_requeues,
                     backoff_base=backoff_base, check=check, chaos=plan,
                     progress=progress)
    return master.run()
