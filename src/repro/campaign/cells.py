"""Execute one campaign cell: a single deterministic simulator run.

:func:`run_cell` is the only code a campaign worker runs per task. It
maps a :class:`~repro.campaign.grid.Cell` onto the same building blocks
the figure harnesses use (:func:`repro.experiments.base.run_workload`,
the app workload factories, :class:`~repro.nanos.config.RuntimeConfig`)
and returns a flat JSON-safe row of *simulated* metrics only — no
wall-clock values — so a cell's result is bit-identical no matter which
worker, attempt, or campaign run produced it. That property is what
makes chaos recovery provable: a campaign that lost workers mid-run
merges to exactly the same report as an undisturbed one.
"""

from __future__ import annotations

from typing import Any, Callable

from ..cluster.machine import MARENOSTRUM4
from ..errors import CampaignError
from ..nanos.config import RuntimeConfig
from .grid import SCALES, Cell, expand_trace_spec, fault_tag, trace_tag

__all__ = ["run_cell", "RESULT_COLUMNS"]

#: Columns of one cell's result row (and of the merged campaign CSV),
#: in report order. All values are simulated — deterministic per cell.
RESULT_COLUMNS = ("cell", "app", "scale", "nodes", "degree", "imbalance",
                  "policy", "lend", "realloc", "faults", "trace", "seed",
                  "makespan", "time_per_iter", "steady_per_iter",
                  "offloaded", "tasks", "executed")


def _app_factory(cell: Cell, cores_per_node: int) -> Callable[[], Any]:
    scale = SCALES[cell.scale]
    if cell.app == "synthetic":
        from ..apps.synthetic import SyntheticSpec, make_synthetic_app
        spec = SyntheticSpec(num_appranks=cell.nodes,
                             imbalance=cell.imbalance,
                             cores_per_apprank=cores_per_node,
                             tasks_per_core=scale.tasks_per_core,
                             iterations=scale.iterations, seed=cell.seed)
        return lambda: make_synthetic_app(spec)
    if cell.app == "micropp":
        from ..apps.micropp.workload import MicroppSpec, make_micropp_app
        mspec = MicroppSpec(
            num_appranks=cell.nodes, cores_per_apprank=cores_per_node,
            subdomains_per_core=scale.micropp_subdomains_per_core,
            iterations=scale.iterations, seed=cell.seed)
        return lambda: make_micropp_app(mspec)
    if cell.app == "nbody":
        from ..apps.nbody.workload import NBodySpec, make_nbody_app
        nspec = NBodySpec(num_appranks=cell.nodes,
                          cores_per_apprank=cores_per_node,
                          bodies_per_apprank=256 * cores_per_node,
                          timesteps=scale.iterations, seed=cell.seed)
        return lambda: make_nbody_app(nspec)
    raise CampaignError(f"unknown app {cell.app!r} in cell {cell.cell_id}")


def run_cell(cell: Cell, check: bool = False) -> dict[str, Any]:
    """Run one cell and return its JSON-safe result row.

    *check* arms the :mod:`repro.validate` invariant sanitizer on the
    run (the campaign's ``--check`` flag); a violation raises
    :class:`~repro.errors.ValidationError`, which the worker reports as
    a cell failure. Any exception out of here counts toward the cell's
    quarantine budget.
    """
    if cell.trace != "none":
        return _run_jobs_cell(cell, check)
    from ..experiments.base import run_workload
    scale = SCALES[cell.scale]
    machine = scale.machine(MARENOSTRUM4)
    if cell.degree == 1:
        config = RuntimeConfig.dlb_single_node()     # fixed local policy
    else:
        config = RuntimeConfig.offloading(cell.degree, cell.realloc)
    config = scale.tune(config).with_(offload_policy=cell.policy,
                                      lend_policy=cell.lend)
    if check:
        config = config.with_(validate=True)
    result = run_workload(machine, cell.nodes, 1, config,
                          _app_factory(cell, machine.cores_per_node),
                          faults=cell.fault_plan)
    stats = result.runtime.stats()
    return {
        "cell": cell.cell_id,
        "app": cell.app,
        "scale": cell.scale,
        "nodes": cell.nodes,
        "degree": cell.degree,
        "imbalance": cell.imbalance,
        "policy": cell.policy,
        "lend": cell.lend,
        "realloc": cell.realloc,
        "faults": fault_tag(cell.faults),
        "trace": "none",
        "seed": cell.seed,
        "makespan": result.elapsed,
        "time_per_iter": result.time_per_iteration,
        "steady_per_iter": result.steady_time_per_iteration,
        "offloaded": result.offloaded_tasks,
        "tasks": stats["tasks"],
        "executed": stats["executed"],
    }


def _run_jobs_cell(cell: Cell, check: bool) -> dict[str, Any]:
    """A multi-job cell: run the arrival trace on the jobs engine.

    The row reuses the single-application columns with a documented
    mapping (units differ, the schema does not): ``makespan`` is the
    trace makespan, ``time_per_iter`` the mean job slowdown,
    ``steady_per_iter`` the cluster utilization, ``offloaded`` the
    cores moved by reallocations, ``tasks`` the number of jobs, and
    ``executed`` the number that finished. ``cell.seed`` re-seeds the
    trace (``seed_offset``), so a seed axis sweeps job populations.
    """
    from ..jobs.engine import run_trace
    from ..jobs.trace import JobTrace
    trace = JobTrace.parse(expand_trace_spec(cell.trace),
                           seed_offset=cell.seed)
    result = run_trace(trace, policy=cell.realloc,
                       scale=SCALES[cell.scale], cluster_nodes=cell.nodes,
                       check=check)
    return {
        "cell": cell.cell_id,
        "app": cell.app,
        "scale": cell.scale,
        "nodes": cell.nodes,
        "degree": cell.degree,
        "imbalance": cell.imbalance,
        "policy": cell.policy,
        "lend": cell.lend,
        "realloc": cell.realloc,
        "faults": fault_tag(cell.faults),
        "trace": trace_tag(cell.trace),
        "seed": cell.seed,
        "makespan": result.makespan,
        "time_per_iter": result.mean_slowdown,
        "steady_per_iter": result.utilization,
        "offloaded": result.cores_moved,
        "tasks": len(result.records),
        "executed": len(result.records),
    }
