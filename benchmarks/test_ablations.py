"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation flips one mechanism the paper motivates and checks the
stated rationale holds in the simulation:

* the §5.5 two-tasks-per-owned-core scheduler threshold;
* the §5.4.2 home-core incentive (offload penalty);
* taskwait write-back of remotely written data (§3.2);
* the modelled solver cost (§5.4.2's 57 ms / quadratic growth);
* the partitioned solver for clusters beyond the group size.
"""

import numpy as np

from repro.apps.synthetic import SyntheticSpec, make_synthetic_app
from repro.balance import solve_core_allocation, solve_partitioned_allocation
from repro.cluster import MARENOSTRUM4, ClusterSpec
from repro.graph import random_biregular
from repro.nanos import ClusterRuntime, RuntimeConfig

from .conftest import run_once

MACHINE = MARENOSTRUM4.scaled(8)


def run_config(config, num_nodes=4, imbalance=2.0, iterations=4, seed=21):
    spec = SyntheticSpec(num_appranks=num_nodes, imbalance=imbalance,
                         cores_per_apprank=8, tasks_per_core=10,
                         iterations=iterations, seed=seed)
    runtime = ClusterRuntime(ClusterSpec.homogeneous(MACHINE, num_nodes),
                             num_nodes, config)
    runtime.run_app(make_synthetic_app(spec))
    return runtime


def test_ablation_scheduler_threshold(benchmark):
    """§5.5 sets two tasks per core: 'one task to be executing and another
    to have the data transfer initiated'. Threshold 1 starves the pipeline;
    a large threshold over-commits to early placement decisions."""
    def sweep():
        return {t: run_config(RuntimeConfig.offloading(
                    4, "global", global_period=0.2, tasks_per_core=t)).elapsed
                for t in (1, 2, 8)}

    elapsed = run_once(benchmark, sweep)
    print()
    for threshold, value in elapsed.items():
        print(f"  tasks_per_core={threshold}: {value:.3f} s")
    # threshold 2 should not lose to either extreme by much
    assert elapsed[2] <= elapsed[1] * 1.05
    assert elapsed[2] <= elapsed[8] * 1.10


def test_ablation_offload_penalty(benchmark):
    """Without the 1+1e-6 incentive the LP has no reason to prefer home
    cores; with it, balanced load means no gratuitous remote ownership."""
    def both():
        out = {}
        for label, penalty in (("with", 1e-6), ("without", 0.0)):
            runtime = run_config(
                RuntimeConfig.offloading(4, "global", global_period=0.2,
                                         offload_penalty=penalty),
                imbalance=1.0)       # perfectly balanced load
            snapshot = runtime.drom.ownership_snapshot()
            remote = sum(count
                         for node, counts in snapshot.items()
                         for (a, n), count in counts.items()
                         if runtime.graph.home_node(a) != n)
            out[label] = (runtime.elapsed, remote)
        return out

    out = run_once(benchmark, both)
    print()
    for label, (elapsed, remote) in out.items():
        print(f"  penalty {label}: elapsed {elapsed:.3f} s, "
              f"{remote} remotely owned cores at end")
    # the incentive must not cost time, and should not own MORE remotely
    assert out["with"][1] <= out["without"][1]


def test_ablation_taskwait_writeback(benchmark):
    """§3.2: values come home when 'needed by a task or a taskwait'.
    Disabling the write-back removes transfer volume but breaks the
    MPI-visible memory contract — it must at least show up as traffic."""
    def both():
        out = {}
        for flag in (True, False):
            runtime = run_config(RuntimeConfig.offloading(
                4, "global", global_period=0.2, taskwait_writeback=flag))
            moved = sum(rt.directory.bytes_transferred
                        for rt in runtime.appranks)
            out[flag] = (runtime.elapsed, moved)
        return out

    out = run_once(benchmark, both)
    print()
    print(f"  writeback on : {out[True][0]:.3f} s, {out[True][1]} bytes")
    print(f"  writeback off: {out[False][0]:.3f} s, {out[False][1]} bytes")
    # the write-back must show up as transfer volume; its *time* cost is
    # largely hidden behind the barrier and can even flip sign through
    # second-order locality effects, so only the volume is asserted
    assert out[True][1] > out[False][1]
    assert abs(out[True][0] - out[False][0]) < 0.2 * out[False][0]


def test_ablation_solver_cost_model(benchmark):
    """The modelled gather+solve latency delays DROM's reaction but must
    not change steady-state quality at the paper's 2 s cadence."""
    def both():
        with_cost = run_config(RuntimeConfig.offloading(
            4, "global", global_period=0.2, model_solver_cost=True))
        without = run_config(RuntimeConfig.offloading(
            4, "global", global_period=0.2, model_solver_cost=False))
        return with_cost.elapsed, without.elapsed

    with_cost, without = run_once(benchmark, both)
    print()
    print(f"  solver cost modelled: {with_cost:.3f} s, ignored: {without:.3f} s")
    assert with_cost >= without * 0.98
    assert with_cost <= without * 1.25


def test_ablation_partitioned_solver_quality(benchmark):
    """§5.4.2: partitioned groups 'allow almost complete load balancing' —
    provided the expander graph respects the groups. Compare the
    partitioned/full bottleneck ratio on a scattered random graph vs a
    group-local one at 64 nodes."""
    from repro.graph import grouped_biregular

    rng = np.random.default_rng(3)
    cores = {n: 48 for n in range(64)}
    speed = {n: 1.0 for n in range(64)}
    work = {a: float(rng.uniform(1, 48)) for a in range(64)}
    scattered = random_biregular(64, 64, 4, np.random.default_rng(3))
    grouped = grouped_biregular(64, 64, 4, 32, np.random.default_rng(3))

    def bottleneck(graph, allocation):
        worst = 0.0
        for a in range(64):
            capacity = sum(allocation[n].get((a, n), 0)
                           for n in graph.nodes_of(a))
            worst = max(worst, work[a] / capacity)
        return worst

    def solve_all():
        out = {}
        for label, graph in (("scattered", scattered), ("grouped", grouped)):
            full = solve_core_allocation(graph, work, cores, speed)
            part = solve_partitioned_allocation(graph, work, cores, speed,
                                                group_nodes=32)
            out[label] = (bottleneck(graph, part) / bottleneck(graph, full))
        return out

    ratios = run_once(benchmark, solve_all)
    print(f"\n  partitioned/full bottleneck ratio: "
          f"scattered graph {ratios['scattered']:.3f}, "
          f"group-local graph {ratios['grouped']:.3f}")
    # cross-group edges are wasted capacity for the partitioned solver...
    assert ratios["scattered"] < 2.0
    # ...while a group-local expander loses (almost) nothing to it
    assert ratios["grouped"] < 1.1
    assert ratios["grouped"] < ratios["scattered"]


def test_ablation_dynamic_vs_static_spreading(benchmark):
    """§5.2's open design question, answered on the simulator: growing the
    graph dynamically from degree 1 vs pre-provisioned static degrees.

    The paper chose static, judging the dynamic benefit "would likely not
    be sufficient to compensate for the extra implementation and
    evaluation complexity" — here dynamic lands near the tuned static
    degree while spawning only the helpers the imbalance needs."""
    def sweep():
        out = {}
        for label, config in {
            "static-d1": RuntimeConfig.offloading(1, "global",
                                                  global_period=0.2),
            "static-d3": RuntimeConfig.offloading(3, "global",
                                                  global_period=0.2),
            "dynamic": RuntimeConfig(
                offload_degree=1, lewi=True, drom=True, policy="global",
                global_period=0.2, dynamic_spreading=True,
                dynamic_period=0.1, dynamic_patience=2,
                dynamic_spawn_latency=0.05),
        }.items():
            runtime = run_config(config, num_nodes=4, imbalance=3.0,
                                 iterations=6)
            helpers = (runtime.spreader.helpers_spawned
                       if runtime.spreader else
                       runtime.graph.num_helper_ranks())
            out[label] = (runtime.elapsed, helpers)
        return out

    out = run_once(benchmark, sweep)
    print()
    for label, (elapsed, helpers) in out.items():
        print(f"  {label:<10s}: {elapsed:.3f} s, {helpers} helper ranks")
    assert out["dynamic"][0] < out["static-d1"][0] * 0.8
    assert out["dynamic"][0] < out["static-d3"][0] * 1.4
    # dynamic provisions fewer helpers than static degree 3 (which creates
    # 2 helpers per apprank up front)
    assert out["dynamic"][1] <= out["static-d3"][1]
