"""Micro-benchmarks of the event core (queue + engine hot loops).

These isolate the three access patterns the calendar queue is built for:
steady schedule/fire churn, cancel-heavy timeout turnover (the LeWI/retry
idiom: almost every scheduled timeout is cancelled before it fires), and
same-timestamp bursts spread across priority bands (zero-delay control
cascades). Each asserts the simulated outcome so a broken optimisation
cannot pass as a fast one.
"""

from repro.sim import Simulator
from repro.sim.events import Event, EventPriority
from repro.sim.queue import EventQueue


def test_schedule_fire_throughput(benchmark):
    """Steady-state push/pop through the full engine drain loop."""
    def churn():
        sim = Simulator()
        remaining = [30_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return sim.events_fired

    assert benchmark(churn) == 30_000


def test_cancel_heavy_timeout_churn(benchmark):
    """Timeout guards that almost never fire: push, cancel, compact.

    Models the runtime idiom where every operation arms a far-future
    timeout and cancels it on completion — the lazy-cancellation +
    compaction path rather than the pop path.
    """
    def churn():
        sim = Simulator()
        remaining = [20_000]

        def step():
            guard = sim.schedule(50.0, lambda: None)
            sim.cancel(guard)
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(0.002, step)

        sim.schedule(0.0, step)
        sim.run()
        return sim.events_fired

    # Only the step events fire; every guard is cancelled first.
    assert benchmark(churn) == 20_000


def test_same_timestamp_priority_bursts(benchmark):
    """Bursts at one timestamp across all four priority bands.

    Exercises the slot/band structure directly: many events share each
    timestamp, so ordering is decided by the priority bands and FIFO
    sequence cursors, not the times heap.
    """
    priorities = [int(p) for p in EventPriority]

    def churn():
        queue = EventQueue()
        seq = 0
        for burst in range(250):
            t = float(burst)
            for _ in range(20):
                for p in priorities:
                    queue.push(Event(t, p, seq, lambda: None))
                    seq += 1
        popped = 0
        last_key = (-1.0, -1, -1)
        while queue:
            event = queue.pop()
            assert event.key > last_key
            last_key = event.key
            popped += 1
        return popped

    assert benchmark(churn) == 250 * 20 * len(EventPriority)
