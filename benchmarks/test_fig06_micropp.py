"""Bench: Figure 6(a,b) — MicroPP weak scaling under the global policy."""

from repro.experiments import fig06_applications

from .conftest import BENCH, run_once


def test_fig06_micropp_weak_scaling(benchmark):
    table = run_once(benchmark, fig06_applications.run_micropp, BENCH,
                     node_counts=(2, 4, 8), degrees=(2, 4),
                     appranks_per_node_list=(1,))
    print()
    print(table.format())
    for nodes in (2, 4, 8):
        rows = [r for r in table.find(nodes=nodes)
                if r["series"].startswith("degree")]
        assert rows
        # offloading cuts MicroPP's time substantially vs DLB at every size
        assert max(r["reduction_vs_dlb_pct"] for r in rows) > 20
    # baseline == dlb with one apprank per node (§7.1)
    for nodes in (2, 4, 8):
        base = table.find(nodes=nodes, series="baseline")[0]
        dlb = table.find(nodes=nodes, series="dlb")[0]
        assert abs(base["steady_per_iter"] - dlb["steady_per_iter"]) \
            < 0.05 * base["steady_per_iter"]


def test_fig06_micropp_two_appranks_per_node(benchmark):
    table = run_once(benchmark, fig06_applications.run_micropp, BENCH,
                     node_counts=(4,), degrees=(2,),
                     appranks_per_node_list=(2,))
    print()
    print(table.format())
    off = table.find(nodes=4, series="degree2", appranks_per_node=2)[0]
    assert off["reduction_vs_dlb_pct"] > 10
