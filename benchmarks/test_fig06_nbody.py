"""Bench: Figure 6(c) — n-body on Nord3 with one slow node."""

from repro.experiments import fig06_applications

from .conftest import BENCH, run_once


def test_fig06_nbody_slow_node(benchmark):
    table = run_once(benchmark, fig06_applications.run_nbody, BENCH,
                     node_counts=(4, 8, 16))
    print()
    print(table.format())
    for nodes in (4, 8, 16):
        rows = {r["series"]: r for r in table.find(nodes=nodes)}
        offload = next(v for k, v in rows.items() if k.startswith("degree"))
        # DLB pools the co-located ranks; offloading fixes the slow node
        assert rows["dlb"]["reduction_vs_baseline_pct"] > 3
        assert offload["reduction_vs_baseline_pct"] > \
            rows["dlb"]["reduction_vs_baseline_pct"]
