"""Bench: regenerate Figure 5 (local vs global coarse-grained traces)."""

from repro.experiments import fig05_policies

from .conftest import BENCH, run_once


def test_fig05_policy_comparison(benchmark):
    table = run_once(benchmark, fig05_policies.run, BENCH)
    print()
    print(table.format())
    local = table.find(policy="local")[0]
    global_ = table.find(policy="global")[0]
    # the figure's claim: global avoids offloading once the load balances
    assert global_["remote_frac_phase2"] < local["remote_frac_phase2"]
