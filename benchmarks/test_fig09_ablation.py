"""Bench: Figure 9 — LeWI/DROM ablation traces (§7.4)."""

from repro.experiments import fig09_traces

from .conftest import BENCH, run_once


def test_fig09_lewi_drom_ablation(benchmark):
    table = run_once(benchmark, fig09_traces.run, BENCH)
    print()
    print(table.format())
    rel = {r["config"]: r["relative_to_baseline"] for r in table.rows}
    # paper: baseline 1.0, LeWI ~0.83, DROM ~0.65, combination best
    assert rel["baseline"] == 1.0
    assert 0.70 < rel["lewi"] < 1.0
    assert rel["drom"] < rel["lewi"]
    assert rel["lewi+drom"] == min(rel.values())
    # trace recorders are attached for rendering
    for runtime in table.runtimes.values():
        assert runtime.trace is not None
