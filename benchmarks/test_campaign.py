"""Campaign orchestration overhead and end-to-end throughput.

The orchestrator's job is to add fault tolerance, not latency: these
benches time a tiny grid end to end through the full master/worker
machinery (process spawn, queues, journal fsyncs) and the serial
equivalent of the same cells, so the per-cell orchestration overhead is
visible as the difference. A resume over a complete journal is also
benched — it must stay near-instant (no cells recomputed).
"""

from __future__ import annotations

from repro.campaign import CampaignGrid, run_campaign
from repro.campaign.cells import run_cell

from .conftest import run_once

GRID = "app=synthetic;scale=tiny;nodes=2;degree=1,2;imbalance=1.5,2.0;seed=0..1"


def test_campaign_end_to_end(benchmark, tmp_path):
    grid = CampaignGrid.parse(GRID)

    def campaign():
        out = tmp_path / f"run-{len(list(tmp_path.iterdir()))}"
        return run_campaign(grid, out, workers=2)

    report = run_once(benchmark, campaign)
    assert report.exit_code == 0
    assert report.completed == len(grid.cells())


def test_serial_cells_reference(benchmark):
    grid = CampaignGrid.parse(GRID)

    def serial():
        return [run_cell(cell) for cell in grid.cells()]

    rows = run_once(benchmark, serial)
    assert len(rows) == len(grid.cells())


def test_campaign_resume_is_near_instant(benchmark, tmp_path):
    grid = CampaignGrid.parse(GRID)
    out = tmp_path / "resume"
    assert run_campaign(grid, out, workers=2).exit_code == 0

    report = run_once(benchmark, run_campaign, grid, out, workers=2)
    assert report.computed == 0
    assert report.resumed == len(grid.cells())
