"""Bench: resilience sweep — makespan and recovery under injected faults."""

from repro.experiments import resilience

from .conftest import BENCH, run_once


def test_resilience_sweep(benchmark):
    table = run_once(benchmark, resilience.run, BENCH, num_nodes=4, degree=2)
    print()
    print(table.format())

    # resilience never loses or duplicates work: every scenario executes
    # every task exactly once (run() also raises on violation)
    for row in table.rows:
        assert row["executed"] == row["tasks"]

    # the helper crash actually lost in-flight work and re-ran it, at a
    # makespan cost over the baseline
    crash = table.find(scenario="helper-crash")[0]
    assert crash["recovered"] > 0
    baseline = table.find(scenario="baseline")[0]
    assert crash["makespan"] > baseline["makespan"]

    # the node crash (spare-node deployment) completed and re-ran the
    # tasks that were on the dead node
    node = table.find(scenario="node-crash")[0]
    assert node["recovered"] > 0

    # lossy control plane: the ack/timeout/backoff protocol re-sent
    # offloads instead of losing them
    msg = table.find(scenario="msg-faults")[0]
    assert msg["resends"] > 0

    # failed LP solves fell back to the last feasible allocation
    solver = table.find(scenario="solver-fallback")[0]
    assert solver["fallbacks"] == 2
