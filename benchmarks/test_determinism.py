"""Bench-suite determinism: same seed, same run, bit-identical tables.

The whole reproduction rests on the simulator being deterministic; these
benches re-run a figure and a raw workload back to back and demand the
CSV serialisations (every float formatted, every row ordered) match byte
for byte. A diff here means nondeterminism crept into the stack — an
unseeded RNG, set/dict iteration reaching scheduling, or wall-clock
leakage — which would silently invalidate every other bench.
"""

from __future__ import annotations

import json

from repro.apps.synthetic import SyntheticSpec, make_synthetic_app
from repro.cluster import MARENOSTRUM4
from repro.experiments import fig05_policies
from repro.experiments.base import run_workload
from repro.nanos import RuntimeConfig

from .conftest import BENCH, run_once


def test_fig05_double_run_is_bit_identical(benchmark):
    first = fig05_policies.run(BENCH).to_csv()
    second = run_once(benchmark, fig05_policies.run, BENCH).to_csv()
    assert first == second


def test_workload_double_run_is_bit_identical(benchmark):
    machine = MARENOSTRUM4.scaled(BENCH.cores_per_node)
    spec = SyntheticSpec(num_appranks=4, imbalance=2.0,
                         cores_per_apprank=BENCH.cores_per_node,
                         tasks_per_core=BENCH.tasks_per_core,
                         iterations=BENCH.iterations)
    config = BENCH.tune(RuntimeConfig.offloading(4, "global"))

    def snapshot():
        result = run_workload(machine, 4, 1, config,
                              lambda: make_synthetic_app(spec))
        return json.dumps({
            "elapsed": result.elapsed,
            "iteration_maxima": [float(x) for x in result.iteration_maxima],
            "events_fired": result.runtime.sim.events_fired,
            "events_scheduled": result.runtime.sim._seq,
        }, sort_keys=True)

    first = snapshot()
    second = run_once(benchmark, snapshot)
    assert first == second
