"""Bench: Figure 8 — synthetic imbalance sweep (§7.3)."""

from repro.experiments import fig08_sweep

from .conftest import BENCH, run_once


def test_fig08_imbalance_sweep(benchmark):
    table = run_once(benchmark, fig08_sweep.run, BENCH,
                     node_counts=(4, 8), imbalances=(1.0, 2.0, 3.0),
                     degrees=(1, 2, 3, 4))
    print()
    print(table.format())

    # baseline time scales linearly with imbalance (it IS the imbalance)
    for nodes in (4, 8):
        base = {r["imbalance"]: r["steady_per_iter"]
                for r in table.find(nodes=nodes, degree=1)}
        assert abs(base[2.0] / base[1.0] - 2.0) < 0.05
        assert abs(base[3.0] / base[1.0] - 3.0) < 0.05

    # degree >= imbalance flattens the curve on small node counts (§7.3)
    for nodes in (4, 8):
        for imbalance_target in (2.0, 3.0):
            degree_ok = table.find(nodes=nodes, imbalance=imbalance_target,
                                   degree=4)[0]
            assert degree_ok["vs_optimal_pct"] < 35

    # degree 2 is insufficient at imbalance 3 (limited connectivity)
    low = table.find(nodes=8, imbalance=3.0, degree=2)[0]
    high = table.find(nodes=8, imbalance=3.0, degree=4)[0]
    assert high["steady_per_iter"] < low["steady_per_iter"]


def test_fig08_64_nodes_spot_check(benchmark):
    """One 64-node point: degree 4 stays dependable at scale."""
    table = run_once(benchmark, fig08_sweep.run, BENCH,
                     node_counts=(64,), imbalances=(2.0,), degrees=(1, 4))
    print()
    print(table.format())
    base = table.find(degree=1)[0]
    off = table.find(degree=4)[0]
    assert off["steady_per_iter"] < 0.75 * base["steady_per_iter"]
