"""Micro-benchmarks of the substrates (performance tracking, not figures)."""

import numpy as np

from repro.apps.micropp import (LinearElastic, SecantNonlinear,
                                StructuredHexMesh, solve_subdomain,
                                spherical_inclusions)
from repro.apps.nbody import accelerations_barnes_hut, plummer_sphere
from repro.balance import solve_core_allocation
from repro.graph import BipartiteGraph, random_biregular
from repro.sim import Simulator


def test_engine_event_throughput(benchmark):
    """Raw event dispatch rate of the discrete-event core."""
    def churn():
        sim = Simulator()
        remaining = [20_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return sim.events_fired

    events = benchmark(churn)
    assert events == 20_000


def test_lp_solve_32_nodes(benchmark):
    """The §5.4.2 allocation problem at the paper's 32-node scale."""
    rng = np.random.default_rng(0)
    graph = random_biregular(64, 32, 4, rng)
    cores = {n: 48 for n in range(32)}
    speed = {n: 1.0 for n in range(32)}
    work = {a: float(rng.uniform(0, 48)) for a in range(64)}

    allocation = benchmark(solve_core_allocation, graph, work, cores, speed)
    assert sum(sum(c.values()) for c in allocation.values()) == 32 * 48


def test_expander_generation_64_nodes(benchmark):
    graph = benchmark(random_biregular, 128, 64, 4,
                      np.random.default_rng(1))
    assert graph.num_helper_ranks() == 128 * 3


def test_fe_linear_subdomain(benchmark):
    mesh = StructuredHexMesh(5)
    phase = spherical_inclusions(mesh, 0.25, 10.0, seed=3)
    eps = np.array([0.01, 0, 0, 0, 0, 0.005])
    result = benchmark(solve_subdomain, mesh, LinearElastic(), eps, phase)
    assert result.converged


def test_fe_nonlinear_subdomain(benchmark):
    mesh = StructuredHexMesh(4)
    phase = spherical_inclusions(mesh, 0.25, 10.0, seed=3)
    eps = np.array([0.01, 0, 0, 0, 0, 0.005])
    result = benchmark(solve_subdomain, mesh, SecantNonlinear(), eps, phase)
    assert result.picard_iterations > 1


def test_barnes_hut_forces_1k_bodies(benchmark):
    bodies = plummer_sphere(1000, seed=7)
    result = benchmark(accelerations_barnes_hut, bodies.positions,
                       bodies.masses, 0.6)
    assert result.accelerations.shape == (1000, 3)
