"""Bench: the abstract's headline numbers in one table."""

import re

from repro.experiments import headline

from .conftest import BENCH, run_once


def _pct(text: str) -> int:
    return int(re.search(r"(-?\d+)%", text).group(1))


def test_headline_claims(benchmark):
    table = run_once(benchmark, headline.run, BENCH)
    print()
    print(table.format())
    rows = {r["claim"]: r["measured"] for r in table.rows}

    # 46% reduction for MicroPP on 32 nodes: directionally strong at any
    # scale (the exact percentage needs the paper-scale run; EXPERIMENTS.md
    # records both).
    micropp = _pct(rows["MicroPP 32 nodes: reduction vs DLB (deg 4, global)"])
    assert micropp > 30

    # n-body: DLB helps, offloading helps further
    dlb = _pct(rows["n-body 16 nodes + slow node: DLB vs baseline"])
    further = _pct(rows["n-body 16 nodes + slow node: degree-3 further reduction"])
    assert dlb < 0 and further < 0

    # synthetic within a scale-inflated margin of optimal
    gap = _pct(rows["synthetic 8 nodes, imbalance<=2.0: gap to optimal"])
    assert gap < 40
