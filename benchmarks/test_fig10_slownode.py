"""Bench: Figure 10 — synthetic sweep with one emulated slow node (§7.5)."""

from repro.experiments import fig10_slownode

from .conftest import BENCH, run_once


def test_fig10_slow_node_sweep(benchmark):
    table = run_once(benchmark, fig10_slownode.run, BENCH,
                     node_counts=(2, 8), imbalances=(1.0, 2.0),
                     degrees=(1, 2, 4))
    print()
    print(table.format())

    # on two nodes, degree 2 stays close to the optimal (grey) line across
    # the whole range — "flat" in the paper is relative to optimal, whose
    # own level moves with the total work on the x-axis
    for row in table.find(nodes=2, degree=2):
        assert row["vs_optimal_pct"] < 40

    # offloading beats degree 1 on both sides of the axis at 8 nodes
    for signed in (-2.0, 2.0):
        base = table.find(nodes=8, degree=1, signed_imbalance=signed)[0]
        off = table.find(nodes=8, degree=4, signed_imbalance=signed)[0]
        assert off["steady_per_iter"] < base["steady_per_iter"]
