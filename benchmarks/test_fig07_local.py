"""Bench: Figure 7 — the applications under the local allocation policy."""

from repro.experiments import fig06_applications, fig07_local

from .conftest import BENCH, run_once


def test_fig07_local_policy(benchmark):
    def both():
        local_table = fig06_applications.run_micropp(
            BENCH, node_counts=(4, 8), degrees=(2,),
            appranks_per_node_list=(1,), policy="local")
        global_table = fig06_applications.run_micropp(
            BENCH, node_counts=(4, 8), degrees=(2,),
            appranks_per_node_list=(1,), policy="global")
        return local_table, global_table

    local_table, global_table = run_once(benchmark, both)
    print()
    print(local_table.format())
    for nodes in (4, 8):
        local_row = local_table.find(nodes=nodes, series="degree2")[0]
        global_row = global_table.find(nodes=nodes, series="degree2")[0]
        # local is effective (§7.2: ~43% on 4 nodes) ...
        assert local_row["reduction_vs_dlb_pct"] > 15
        # ... but global stays ahead, increasingly so at scale (§7.2 puts
        # local ~10% behind at 32 nodes and "more sensitive" to the degree;
        # at degree 2 the sensitivity gap is the widest)
        assert local_row["steady_per_iter"] < \
            1.5 * global_row["steady_per_iter"]
        assert local_row["steady_per_iter"] >= \
            0.95 * global_row["steady_per_iter"]


def test_fig07_harness_wrapper(benchmark):
    micropp, nbody = run_once(benchmark, fig07_local.run, BENCH,
                              node_counts=(2,), degrees=(2,),
                              nbody_node_counts=(2,))
    assert "Figure 7" in micropp.title
    assert "policy=local" in micropp.title
    assert len(nbody.rows) >= 2
