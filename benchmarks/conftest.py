"""Benchmark fixtures: isolated graph cache and the bench scale.

Each ``test_figXX`` bench regenerates one of the paper's tables/figures at
a reduced scale (the shapes are scale-invariant; see DESIGN.md) and
asserts the figure's key qualitative claim, so the bench suite doubles as
the reproduction harness. Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.experiments import Scale

#: scale used by the figure benches: small enough for quick runs, large
#: enough that every paper shape (orderings, crossovers) holds.
BENCH = Scale(name="bench", cores_per_node=8, tasks_per_core=10,
              iterations=3, micropp_subdomains_per_core=4,
              local_period=0.02, global_period=0.2)


@pytest.fixture(autouse=True)
def _isolated_graph_cache(tmp_path_factory, monkeypatch):
    cache_dir = tmp_path_factory.getbasetemp() / "bench-graph-cache"
    monkeypatch.setenv("REPRO_GRAPH_CACHE", str(cache_dir))


@pytest.fixture(autouse=True)
def _pinned_global_seed():
    """Pin the global RNGs before every bench.

    The repo's own code threads explicit seeds/Generators everywhere, but
    pinning the legacy global state too makes every bench reproducible even
    if a dependency (or a future bench) reaches for ``np.random.*`` or
    ``random.*`` module-level draws — the determinism benches assert
    bit-identical double runs on top of this.
    """
    np.random.seed(0)
    random.seed(0)


@pytest.fixture
def bench_scale() -> Scale:
    return BENCH


def run_once(benchmark, fn, *args, **kwargs):
    """One timed round: experiments are seconds-long, deterministic runs."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
