"""Bench: Figure 11 — convergence of the node imbalance over time (§7.6)."""

from repro.experiments import fig11_convergence

from .conftest import BENCH, run_once


def test_fig11_convergence(benchmark):
    table = run_once(benchmark, fig11_convergence.run, BENCH,
                     scenarios=((4, 4.0),))
    print()
    print(table.format())
    rows = {r["config"]: r for r in table.rows}
    # DROM drives the node imbalance close to 1.0. (The +LeWI variants sit
    # higher at this tiny bench scale: with 8-core nodes the one-core
    # floors cap DROM at 5/8 of a node and borrowed home cores skew the
    # node signal — a scale artefact quantified in EXPERIMENTS.md; at
    # paper scale all four converge to ~1.0.)
    for config in ("local+drom", "global+drom"):
        assert rows[config]["plateau"] < 1.25
    # LeWI alone is always the worst balancer: no ownership convergence.
    assert rows["lewi-only"]["plateau"] >= max(
        rows[c]["plateau"] for c in rows if c != "lewi-only") - 1e-9
    assert rows["lewi-only"]["plateau"] > 1.10
    # local acts continuously, global waits for the solver period: the
    # local policy's time-to-balance is never slower
    assert rows["local+drom"]["time_to_near_1"] <= \
        rows["global+drom"]["time_to_near_1"] + 1e-9
    # with completion stealing, LeWI keeps borrowed cores busy but still
    # cannot converge the *ownership*: it remains the slowest to balance
    assert rows["lewi-only"]["time_to_near_1"] >= \
        rows["local+drom"]["time_to_near_1"]
